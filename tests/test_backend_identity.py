"""Backend bit-identity: LocalBackend vs SharedMemoryBackend.

The backend contract (``repro/cluster/backends/base.py``) requires every
backend to be observationally identical — same result bits, same virtual
clocks, same :class:`TrafficStats`, same round counters, same recorded
traces — differing only in wall clock and address spaces.  These tests
drive every collective × compressor combination through the in-process
oracle and the multiprocess shm backend side by side, on the loop path
(``fast_path=False``) so message payloads genuinely cross the rings.

One shm backend per world size is reused across tests/examples (workers
are expensive to spawn); backends re-attach cleanly to fresh transports.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, Transport
from repro.cluster.backends import SharedMemoryBackend
from repro.cluster.netmodel import TCP_25G
from repro.comm import CommGroup, ring_allreduce, scatter_reduce
from repro.compression import (
    ErrorFeedback,
    OneBitCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)
from repro.core.primitives import RingPeers, c_fp_s, c_lp_s, d_fp_s, d_lp_s

CODEC_FACTORIES = {
    "qsgd8": lambda: QSGDCompressor(bits=8, rng=np.random.default_rng(3)),
    "qsgd4": lambda: QSGDCompressor(bits=4, rng=np.random.default_rng(11)),
    "onebit": OneBitCompressor,
    "terngrad": lambda: TernGradCompressor(rng=np.random.default_rng(5)),
    "topk": lambda: TopKCompressor(ratio=0.25),
    "signsgd": SignSGDCompressor,
}

_SHM_CACHE: dict[int, SharedMemoryBackend] = {}


def _shm_backend(world: int) -> SharedMemoryBackend:
    backend = _SHM_CACHE.get(world)
    if backend is None or backend._closed:
        backend = SharedMemoryBackend(world)
        _SHM_CACHE[world] = backend
    return backend


@pytest.fixture(scope="module", autouse=True)
def _shutdown_cached_backends():
    yield
    for backend in _SHM_CACHE.values():
        backend.close()
    _SHM_CACHE.clear()


class _Recorder:
    """Minimal tracer capturing what TraceRecorder observes per round."""

    def __init__(self):
        self.rounds = []

    def on_exchange(self, messages):
        self.rounds.append([(m.src, m.dst, m.nbytes, m.match_id) for m in messages])

    def on_collective(self, group, kind, elements, **meta):
        self.rounds.append(("collective", kind, elements, tuple(sorted(meta))))

    def on_local(self, rank, kind, **meta):
        self.rounds.append(("local", rank, kind, tuple(sorted(meta.items()))))


def _spec(world: int) -> ClusterSpec:
    if world > 4 and world % 4 == 0:
        return ClusterSpec(num_nodes=world // 4, workers_per_node=4, inter_node=TCP_25G)
    return ClusterSpec(num_nodes=1, workers_per_node=world, inter_node=TCP_25G)


def _transport_state(group: CommGroup) -> tuple:
    transport = group.transport
    stats = transport.stats
    return (
        [clock.now for clock in transport.clocks],
        stats.messages,
        stats.rounds,
        stats.total_bytes,
        stats.inter_node_bytes,
        stats.intra_node_bytes,
        dict(stats.per_rank_sent_bytes),
        transport._round_counter,
    )


def _compare(world: int, run):
    """Run ``run(group)`` on both backends; assert total observational identity."""
    from repro.comm.fastpath import use_fast_path

    spec = _spec(world)
    outputs, states, traces = {}, {}, {}
    for name, backend in (("local", "local"), ("shm", _shm_backend(world))):
        group = CommGroup(Transport(spec, backend=backend), list(range(world)))
        recorder = _Recorder()
        group.transport.tracer = recorder
        # Force the loop path on both backends so payloads really route
        # through route_round (the fast path sends size stubs only).
        with use_fast_path(False):
            outputs[name] = run(group)
        states[name] = _transport_state(group)
        traces[name] = recorder.rounds
    local_out, shm_out = outputs["local"], outputs["shm"]
    assert len(local_out) == len(shm_out)
    for a, b in zip(local_out, shm_out):
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes(), "shm result bits differ from local"
    assert states["local"] == states["shm"]
    assert traces["local"] == traces["shm"]
    return local_out


worlds = st.integers(min_value=2, max_value=4)
sizes = st.integers(min_value=1, max_value=96)


class TestCollectiveIdentity:
    @settings(max_examples=8, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_scatter_reduce(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(world, lambda g: scatter_reduce([a.copy() for a in base], g, fast_path=False))

    @settings(max_examples=6, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_ring_allreduce(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(world, lambda g: ring_allreduce([a.copy() for a in base], g, fast_path=False))

    @settings(max_examples=6, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_c_fp_s(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(world, lambda g: c_fp_s([a.copy() for a in base], g))

    @settings(max_examples=6, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_gossip_d_fp_s(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(
            world,
            lambda g: d_fp_s([a.copy() for a in base], g, RingPeers(), fast_path=False),
        )

    def test_multi_node_world_eight(self):
        # Mixes NVLink and TCP fabrics (2 nodes x 4 workers).
        rng = np.random.default_rng(8)
        base = [rng.standard_normal(64) for _ in range(8)]
        _compare(8, lambda g: scatter_reduce([a.copy() for a in base], g, fast_path=False))


class TestCompressedIdentity:
    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    def test_c_lp_s(self, codec_name):
        rng = np.random.default_rng(17)
        base = [rng.standard_normal(64) for _ in range(4)]

        def run(group):
            codec = CODEC_FACTORIES[codec_name]()
            return c_lp_s([a.copy() for a in base], group, codec, fast_path=False)

        _compare(4, run)

    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    def test_d_lp_s(self, codec_name):
        rng = np.random.default_rng(23)
        base = [rng.standard_normal(48) for _ in range(4)]

        def run(group):
            codec = CODEC_FACTORIES[codec_name]()
            return d_lp_s(
                [a.copy() for a in base], group, codec, RingPeers(), fast_path=False
            )

        _compare(4, run)

    @pytest.mark.parametrize("codec_name", ["qsgd8", "onebit", "topk"])
    def test_c_lp_s_with_error_feedback(self, codec_name):
        rng = np.random.default_rng(29)
        base = [rng.standard_normal(64) for _ in range(4)]
        residuals = {}

        def run(group):
            codec = CODEC_FACTORIES[codec_name]()
            worker_err = [ErrorFeedback(codec) for _ in range(4)]
            server_err = [ErrorFeedback(codec) for _ in range(4)]
            out = None
            for _ in range(3):  # iterate so residuals accumulate
                out = c_lp_s(
                    [a.copy() for a in base], group, codec,
                    worker_errors=worker_err, server_errors=server_err,
                    fast_path=False,
                )
            residuals[group.transport.backend.name] = (worker_err, server_err)
            return out

        _compare(4, run)
        for local_ef, shm_ef in zip(residuals["local"], residuals["shm"]):
            for a, b in zip(local_ef, shm_ef):
                assert a._residuals.keys() == b._residuals.keys()
                for key in a._residuals:
                    assert a._residuals[key].tobytes() == b._residuals[key].tobytes()


class TestTracedRounds:
    def test_real_trace_recorder_identical(self):
        from repro.analysis.recorder import TraceRecorder

        spec = _spec(4)
        rng = np.random.default_rng(31)
        base = [rng.standard_normal(40) for _ in range(4)]
        events = {}
        for name, backend in (("local", "local"), ("shm", _shm_backend(4))):
            transport = Transport(spec, backend=backend)
            group = CommGroup(transport, list(range(4)))
            recorder = TraceRecorder(4).install(transport)
            scatter_reduce([a.copy() for a in base], group, fast_path=False)
            events[name] = [
                (op.rank, op.seq, op.kind, op.round, op.elements, op.nbytes,
                 op.peers, op.group, op.match)
                for op in recorder.trace.all_ops()
            ]
            recorder.uninstall()
        assert len(events["local"]) > 0
        assert events["local"] == events["shm"]


class TestEngineEndToEnd:
    def test_trainer_identical_across_backends(self):
        from repro.algorithms import QSGD
        from repro.core.optimizer_framework import BaguaConfig
        from repro.data.loader import make_sharded_loaders
        from repro.training import DistributedTrainer, get_task

        task = get_task("VGG16")
        dataset = task.dataset_factory(0)
        records = {}
        for backend in ("local", "shm"):
            spec = ClusterSpec(num_nodes=1, workers_per_node=2, inter_node=TCP_25G)
            trainer = DistributedTrainer(
                spec, task.model_factory, task.make_optimizer, QSGD(bits=8),
                # fast_path=False keeps the loop path so bucket payloads
                # genuinely travel through the backend every round.
                config=BaguaConfig(backend=backend, fast_path=False),
                seed=0,
            )
            assert trainer.transport.backend.name == backend
            loaders = make_sharded_loaders(dataset, 2, 16, seed=0)
            record = trainer.train(loaders, task.loss_fn, epochs=1, label="parity")
            weights = np.concatenate(
                [w.flatten() for w in trainer.engine.workers[0].model.state_dict().values()]
            )
            records[backend] = (
                record.epoch_losses,
                record.epoch_sim_times,
                record.epoch_comm_bytes,
                trainer.transport.stats.messages,
                trainer.transport.stats.total_bytes,
                weights.tobytes(),
            )
            if backend == "shm":
                # Engine pools came from the backend: shm-mapped storage.
                for worker in trainer.engine.workers:
                    pool = worker.state["flat_pool"]
                    assert pool is not None and not pool.flags.owndata
            trainer.transport.close()
        assert records["local"] == records["shm"]
