"""Backend bit-identity: LocalBackend vs SharedMemoryBackend.

The backend contract (``repro/cluster/backends/base.py``) requires every
backend to be observationally identical — same result bits, same virtual
clocks, same :class:`TrafficStats`, same round counters, same recorded
traces — differing only in wall clock and address spaces.  These tests
drive every collective × compressor combination through the in-process
oracle and the multiprocess shm backend side by side, on the loop path
(``fast_path=False``) so message payloads genuinely cross the rings.

One shm backend per world size is reused across tests/examples (workers
are expensive to spawn); backends re-attach cleanly to fresh transports.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, Transport
from repro.cluster.backends import SharedMemoryBackend
from repro.cluster.netmodel import TCP_25G
from repro.comm import CommGroup, ring_allreduce, scatter_reduce
from repro.compression import (
    ErrorFeedback,
    OneBitCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)
from repro.core.primitives import RingPeers, c_fp_s, c_lp_s, d_fp_s, d_lp_s

CODEC_FACTORIES = {
    "qsgd8": lambda: QSGDCompressor(bits=8, rng=np.random.default_rng(3)),
    "qsgd4": lambda: QSGDCompressor(bits=4, rng=np.random.default_rng(11)),
    "onebit": OneBitCompressor,
    "terngrad": lambda: TernGradCompressor(rng=np.random.default_rng(5)),
    "topk": lambda: TopKCompressor(ratio=0.25),
    "signsgd": SignSGDCompressor,
}

_SHM_CACHE: dict[int, SharedMemoryBackend] = {}


def _shm_backend(world: int) -> SharedMemoryBackend:
    backend = _SHM_CACHE.get(world)
    if backend is None or backend._closed:
        backend = SharedMemoryBackend(world)
        _SHM_CACHE[world] = backend
    return backend


@pytest.fixture(scope="module", autouse=True)
def _shutdown_cached_backends():
    yield
    for backend in _SHM_CACHE.values():
        backend.close()
    _SHM_CACHE.clear()


class _Recorder:
    """Minimal tracer capturing what TraceRecorder observes per round."""

    def __init__(self):
        self.rounds = []

    def on_exchange(self, messages):
        self.rounds.append([(m.src, m.dst, m.nbytes, m.match_id) for m in messages])

    def on_collective(self, group, kind, elements, **meta):
        self.rounds.append(("collective", kind, elements, tuple(sorted(meta))))

    def on_local(self, rank, kind, **meta):
        self.rounds.append(("local", rank, kind, tuple(sorted(meta.items()))))


def _spec(world: int) -> ClusterSpec:
    if world > 4 and world % 4 == 0:
        return ClusterSpec(num_nodes=world // 4, workers_per_node=4, inter_node=TCP_25G)
    return ClusterSpec(num_nodes=1, workers_per_node=world, inter_node=TCP_25G)


def _transport_state(group: CommGroup) -> tuple:
    transport = group.transport
    stats = transport.stats
    return (
        [clock.now for clock in transport.clocks],
        stats.messages,
        stats.rounds,
        stats.total_bytes,
        stats.inter_node_bytes,
        stats.intra_node_bytes,
        dict(stats.per_rank_sent_bytes),
        transport._round_counter,
    )


def _compare(world: int, run):
    """Run ``run(group)`` on both backends; assert total observational identity."""
    from repro.comm.fastpath import use_fast_path

    spec = _spec(world)
    outputs, states, traces = {}, {}, {}
    for name, backend in (("local", "local"), ("shm", _shm_backend(world))):
        group = CommGroup(Transport(spec, backend=backend), list(range(world)))
        recorder = _Recorder()
        group.transport.tracer = recorder
        # Force the loop path on both backends so payloads really route
        # through route_round (the fast path sends size stubs only).
        with use_fast_path(False):
            outputs[name] = run(group)
        states[name] = _transport_state(group)
        traces[name] = recorder.rounds
    local_out, shm_out = outputs["local"], outputs["shm"]
    assert len(local_out) == len(shm_out)
    for a, b in zip(local_out, shm_out):
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes(), "shm result bits differ from local"
    assert states["local"] == states["shm"]
    assert traces["local"] == traces["shm"]
    return local_out


worlds = st.integers(min_value=2, max_value=4)
sizes = st.integers(min_value=1, max_value=96)


class TestCollectiveIdentity:
    @settings(max_examples=8, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_scatter_reduce(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(world, lambda g: scatter_reduce([a.copy() for a in base], g, fast_path=False))

    @settings(max_examples=6, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_ring_allreduce(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(world, lambda g: ring_allreduce([a.copy() for a in base], g, fast_path=False))

    @settings(max_examples=6, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_c_fp_s(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(world, lambda g: c_fp_s([a.copy() for a in base], g))

    @settings(max_examples=6, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_gossip_d_fp_s(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        _compare(
            world,
            lambda g: d_fp_s([a.copy() for a in base], g, RingPeers(), fast_path=False),
        )

    def test_multi_node_world_eight(self):
        # Mixes NVLink and TCP fabrics (2 nodes x 4 workers).
        rng = np.random.default_rng(8)
        base = [rng.standard_normal(64) for _ in range(8)]
        _compare(8, lambda g: scatter_reduce([a.copy() for a in base], g, fast_path=False))


class TestCompressedIdentity:
    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    def test_c_lp_s(self, codec_name):
        rng = np.random.default_rng(17)
        base = [rng.standard_normal(64) for _ in range(4)]

        def run(group):
            codec = CODEC_FACTORIES[codec_name]()
            return c_lp_s([a.copy() for a in base], group, codec, fast_path=False)

        _compare(4, run)

    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    def test_d_lp_s(self, codec_name):
        rng = np.random.default_rng(23)
        base = [rng.standard_normal(48) for _ in range(4)]

        def run(group):
            codec = CODEC_FACTORIES[codec_name]()
            return d_lp_s(
                [a.copy() for a in base], group, codec, RingPeers(), fast_path=False
            )

        _compare(4, run)

    @pytest.mark.parametrize("codec_name", ["qsgd8", "onebit", "topk"])
    def test_c_lp_s_with_error_feedback(self, codec_name):
        rng = np.random.default_rng(29)
        base = [rng.standard_normal(64) for _ in range(4)]
        residuals = {}

        def run(group):
            codec = CODEC_FACTORIES[codec_name]()
            worker_err = [ErrorFeedback(codec) for _ in range(4)]
            server_err = [ErrorFeedback(codec) for _ in range(4)]
            out = None
            for _ in range(3):  # iterate so residuals accumulate
                out = c_lp_s(
                    [a.copy() for a in base], group, codec,
                    worker_errors=worker_err, server_errors=server_err,
                    fast_path=False,
                )
            residuals[group.transport.backend.name] = (worker_err, server_err)
            return out

        _compare(4, run)
        for local_ef, shm_ef in zip(residuals["local"], residuals["shm"]):
            for a, b in zip(local_ef, shm_ef):
                assert a._residuals.keys() == b._residuals.keys()
                for key in a._residuals:
                    assert a._residuals[key].tobytes() == b._residuals[key].tobytes()


class TestTracedRounds:
    def test_real_trace_recorder_identical(self):
        from repro.analysis.recorder import TraceRecorder

        spec = _spec(4)
        rng = np.random.default_rng(31)
        base = [rng.standard_normal(40) for _ in range(4)]
        events = {}
        for name, backend in (("local", "local"), ("shm", _shm_backend(4))):
            transport = Transport(spec, backend=backend)
            group = CommGroup(transport, list(range(4)))
            recorder = TraceRecorder(4).install(transport)
            scatter_reduce([a.copy() for a in base], group, fast_path=False)
            events[name] = [
                (op.rank, op.seq, op.kind, op.round, op.elements, op.nbytes,
                 op.peers, op.group, op.match)
                for op in recorder.trace.all_ops()
            ]
            recorder.uninstall()
        assert len(events["local"]) > 0
        assert events["local"] == events["shm"]


class TestPoolRefIdentity:
    """Pool-ref collectives (PR 10): shm descriptors vs the local oracle.

    Member arrays live inside each backend's bucket pool, so on shm the
    dense batched collectives resolve them to 25-byte ``PoolRef``
    descriptors and reduce in place on the cross-process pool, while local
    keeps the stub path.  Results, final pool contents, virtual clocks,
    traffic stats and traces must all stay bit-identical — the pool-ref
    path is a wall-clock optimization only.
    """

    # Three legs: the plain local oracle (pool refs off — stub schedule,
    # inputs untouched), local with pool refs forced (the base class's
    # generic *serial* in-place executor) and shm with pool refs (the
    # worker-parallel in-place executor).  All three must agree on result
    # bits, clocks, stats and traces; the two in-place legs must also
    # agree on the final pool contents.
    _LEGS = (("oracle", "local", False), ("local", "local", True), ("shm", None, True))

    def _compare_poolref(self, world, base, run, expect_reduces):
        from repro.comm import use_pool_ref

        spec = _spec(world)
        outputs, pools, states, traces = {}, {}, {}, {}
        for name, backend, pool_refs in self._LEGS:
            transport = Transport(
                spec, backend=_shm_backend(world) if backend is None else backend
            )
            group = CommGroup(transport, list(range(world)))
            recorder = _Recorder()
            transport.tracer = recorder
            arrays = [
                transport.backend.allocate_pool(rank, base[rank].size)
                for rank in range(world)
            ]
            for array, data in zip(arrays, base):
                array[:] = data
            if name == "shm":
                before = transport.backend.shm_stats["reduces"]
            with use_pool_ref(pool_refs):
                outputs[name] = [np.asarray(a).copy() for a in run(group, arrays)]
            pools[name] = [a.copy() for a in arrays]
            states[name] = _transport_state(group)
            traces[name] = recorder.rounds
            if name == "shm":
                engaged = transport.backend.shm_stats["reduces"] > before
                assert engaged == expect_reduces, (
                    "pool-ref in-place reduction "
                    + ("did not engage" if expect_reduces else "engaged unexpectedly")
                )
        for name in ("local", "shm"):
            for a, b in zip(outputs["oracle"], outputs[name]):
                assert a.dtype == b.dtype
                assert a.tobytes() == b.tobytes(), f"{name} pool-ref result bits differ"
            assert states["oracle"] == states[name]
            assert traces["oracle"] == traces[name]
        for a, b in zip(pools["local"], pools["shm"]):
            assert a.tobytes() == b.tobytes(), "in-place pool contents diverged"
        return outputs["oracle"]

    @settings(max_examples=8, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_scatter_reduce_in_place(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        self._compare_poolref(
            world, base, lambda g, arrays: scatter_reduce(arrays, g, fast_path=True),
            expect_reduces=True,
        )

    @settings(max_examples=8, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_ring_allreduce_in_place(self, world, size, seed):
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        self._compare_poolref(
            world, base, lambda g, arrays: ring_allreduce(arrays, g, fast_path=True),
            expect_reduces=True,
        )

    @settings(max_examples=4, deadline=None)
    @given(world=worlds, size=sizes, seed=st.integers(0, 2**16))
    def test_routed_rounds_ship_descriptors(self, world, size, seed):
        # Dense pool-resident payloads routed through a round cross the
        # wire as 25-byte descriptors, resolve back to the *same* pool
        # storage on delivery, and stay bit-identical to local delivery.
        from repro.cluster.transport import Message

        spec = _spec(world)
        rng = np.random.default_rng(seed)
        base = [rng.standard_normal(size) for _ in range(world)]
        delivered = {}
        for name, backend in (("local", "local"), ("shm", _shm_backend(world))):
            transport = Transport(spec, backend=backend)
            pools = [transport.backend.allocate_pool(rank, size) for rank in range(world)]
            for pool, data in zip(pools, base):
                pool[:] = data
            if name == "shm":
                before = transport.backend.shm_stats["pool_ref_payloads"]
            messages = [
                Message(src, (src + 1) % world, pools[src], match_id=f"pr.s{src}")
                for src in range(world)
            ]
            inbox = transport.exchange(messages)
            got = {
                dst: inbox[dst][0].payload for dst in range(world) if inbox.get(dst)
            }
            delivered[name] = {dst: payload.tobytes() for dst, payload in got.items()}
            if name == "shm":
                assert transport.backend.shm_stats["pool_ref_payloads"] > before, (
                    "dense pool-resident round payloads did not ship as descriptors"
                )
                for dst, payload in got.items():
                    assert payload is pools[(dst - 1) % world], (
                        "delivered payload is not the source pool view (copied?)"
                    )
        assert delivered["local"] == delivered["shm"]

    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    def test_compressed_keeps_codec_path(self, codec_name):
        # Compressed collectives over pool-resident buckets: the pool-ref
        # path must not engage (payloads are codec objects, not dense f64).
        rng = np.random.default_rng(41)
        base = [rng.standard_normal(64) for _ in range(4)]

        def run(group, arrays):
            codec = CODEC_FACTORIES[codec_name]()
            return c_lp_s(arrays, group, codec, fast_path=False)

        self._compare_poolref(4, base, run, expect_reduces=False)

    def test_error_feedback_residuals_across_steps(self):
        rng = np.random.default_rng(43)
        base = [rng.standard_normal(64) for _ in range(4)]
        residuals = {}

        def run(group, arrays):
            codec = CODEC_FACTORIES["qsgd8"]()
            worker_err = [ErrorFeedback(codec) for _ in range(4)]
            server_err = [ErrorFeedback(codec) for _ in range(4)]
            out = None
            for _ in range(3):  # residuals accumulate across steps
                out = c_lp_s(
                    arrays, group, codec,
                    worker_errors=worker_err, server_errors=server_err,
                    fast_path=False,
                )
            residuals[group.transport.backend.name] = (worker_err, server_err)
            return out

        self._compare_poolref(4, base, run, expect_reduces=False)
        for local_ef, shm_ef in zip(residuals["local"], residuals["shm"]):
            for a, b in zip(local_ef, shm_ef):
                assert a._residuals.keys() == b._residuals.keys()
                for key in a._residuals:
                    assert a._residuals[key].tobytes() == b._residuals[key].tobytes()

    def test_non_pool_payloads_fall_back(self):
        # Plain arrays that own their storage never resolve to PoolRefs:
        # the collective takes the stub/codec path even on shm with the
        # switch on, and stays bit-identical.
        rng = np.random.default_rng(47)
        base = [rng.standard_normal(72) for _ in range(4)]
        spec = _spec(4)
        outputs, states = {}, {}
        for name, backend in (("local", "local"), ("shm", _shm_backend(4))):
            transport = Transport(spec, backend=backend)
            group = CommGroup(transport, list(range(4)))
            arrays = [a.copy() for a in base]
            if name == "shm":
                before = dict(transport.backend.shm_stats)
            outputs[name] = [a.copy() for a in scatter_reduce(arrays, group, fast_path=True)]
            states[name] = _transport_state(group)
            if name == "shm":
                after = transport.backend.shm_stats
                assert after["reduces"] == before["reduces"]
                assert after["pool_ref_payloads"] == before["pool_ref_payloads"]
        for a, b in zip(outputs["local"], outputs["shm"]):
            assert a.tobytes() == b.tobytes()
        assert states["local"] == states["shm"]

    def test_trace_recorder_and_hb_reports_identical(self):
        from repro.analysis import AnalysisSubject, check_hb
        from repro.analysis.recorder import TraceRecorder

        spec = _spec(4)
        rng = np.random.default_rng(53)
        base = [rng.standard_normal(96) for _ in range(4)]
        events, reports = {}, {}
        for name, backend in (("local", "local"), ("shm", _shm_backend(4))):
            transport = Transport(spec, backend=backend)
            group = CommGroup(transport, list(range(4)))
            arrays = [
                transport.backend.allocate_pool(rank, base[rank].size)
                for rank in range(4)
            ]
            for array, data in zip(arrays, base):
                array[:] = data
            recorder = TraceRecorder(4).install(transport)
            scatter_reduce(arrays, group, fast_path=True)
            ring_allreduce(arrays, group, fast_path=True)
            events[name] = [
                (op.rank, op.seq, op.kind, op.round, op.elements, op.nbytes,
                 op.peers, op.group, op.match)
                for op in recorder.trace.all_ops()
            ]
            subject = AnalysisSubject(world_size=4, trace=recorder.trace)
            reports[name] = [finding.explain() for finding in check_hb(subject)]
            recorder.uninstall()
        assert len(events["local"]) > 0
        assert events["local"] == events["shm"]
        assert reports["local"] == reports["shm"] == []


class TestEngineEndToEnd:
    def test_trainer_identical_across_backends(self):
        from repro.algorithms import QSGD
        from repro.core.optimizer_framework import BaguaConfig
        from repro.data.loader import make_sharded_loaders
        from repro.training import DistributedTrainer, get_task

        task = get_task("VGG16")
        dataset = task.dataset_factory(0)
        records = {}
        for backend in ("local", "shm"):
            spec = ClusterSpec(num_nodes=1, workers_per_node=2, inter_node=TCP_25G)
            trainer = DistributedTrainer(
                spec, task.model_factory, task.make_optimizer, QSGD(bits=8),
                # fast_path=False keeps the loop path so bucket payloads
                # genuinely travel through the backend every round.
                config=BaguaConfig(backend=backend, fast_path=False),
                seed=0,
            )
            assert trainer.transport.backend.name == backend
            loaders = make_sharded_loaders(dataset, 2, 16, seed=0)
            record = trainer.train(loaders, task.loss_fn, epochs=1, label="parity")
            weights = np.concatenate(
                [w.flatten() for w in trainer.engine.workers[0].model.state_dict().values()]
            )
            records[backend] = (
                record.epoch_losses,
                record.epoch_sim_times,
                record.epoch_comm_bytes,
                trainer.transport.stats.messages,
                trainer.transport.stats.total_bytes,
                weights.tobytes(),
            )
            if backend == "shm":
                # Engine pools came from the backend: shm-mapped storage.
                for worker in trainer.engine.workers:
                    pool = worker.state["flat_pool"]
                    assert pool is not None and not pool.flags.owndata
            trainer.transport.close()
        assert records["local"] == records["shm"]
