"""Pipeline simulator: overlap semantics, ablation directions, stragglers."""

import pytest

from repro.cluster import ClusterSpec, paper_cluster
from repro.core import BaguaConfig
from repro.models import bert_large_spec, vgg16_spec
from repro.simulation import (
    CommCostModel,
    bagua_system,
    byteps_system,
    horovod_system,
    pytorch_ddp_system,
    simulate_epoch,
    simulate_iteration,
    vanilla_system,
)


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster("25gbps")


@pytest.fixture(scope="module")
def cost(cluster):
    return CommCostModel(cluster)


@pytest.fixture(scope="module")
def vgg():
    return vgg16_spec()


class TestIterationBasics:
    def test_positive_components(self, cluster, cost, vgg):
        timing = simulate_iteration(vgg, cluster, bagua_system(cost, "allreduce"))
        assert timing.iteration_time > 0
        assert timing.compute_time > 0
        assert timing.comm_time_total > 0
        assert 0.0 <= timing.overlap_efficiency <= 1.0

    def test_iteration_at_least_compute(self, cluster, cost, vgg):
        timing = simulate_iteration(vgg, cluster, bagua_system(cost, "allreduce"))
        assert timing.iteration_time >= timing.compute_time * 0.999

    def test_steady_state_stable(self, cluster, cost, vgg):
        a = simulate_iteration(vgg, cluster, pytorch_ddp_system(cost))
        b = simulate_iteration(vgg, cluster, pytorch_ddp_system(cost))
        assert a.iteration_time == pytest.approx(b.iteration_time)


class TestOverlapSemantics:
    def test_overlap_beats_no_overlap(self, cluster, cost, vgg):
        fast = simulate_iteration(
            vgg, cluster, bagua_system(cost, "allreduce", BaguaConfig(overlap=True, hierarchical=True))
        )
        slow = simulate_iteration(
            vgg, cluster, bagua_system(cost, "allreduce", BaguaConfig(overlap=False, hierarchical=True))
        )
        assert fast.iteration_time < slow.iteration_time

    def test_vanilla_is_worst_allreduce(self, cluster, cost, vgg):
        vanilla = simulate_iteration(vgg, cluster, vanilla_system(cost))
        ddp = simulate_iteration(vgg, cluster, pytorch_ddp_system(cost))
        assert vanilla.iteration_time > ddp.iteration_time

    def test_fusion_helps_many_tensor_model(self, cluster, cost):
        bert = bert_large_spec()
        fused = simulate_iteration(
            bert, cluster, bagua_system(cost, "allreduce", BaguaConfig(flatten=True, hierarchical=True))
        )
        unfused = simulate_iteration(
            bert, cluster, bagua_system(cost, "allreduce", BaguaConfig(flatten=False, hierarchical=True))
        )
        assert unfused.iteration_time > 1.15 * fused.iteration_time

    def test_hierarchy_essential_for_scatter_reduce(self, cluster, cost, vgg):
        hier = simulate_iteration(
            vgg, cluster, bagua_system(cost, "allreduce", BaguaConfig(hierarchical=True))
        )
        flat = simulate_iteration(
            vgg, cluster, bagua_system(cost, "allreduce", BaguaConfig(hierarchical=False))
        )
        assert flat.iteration_time > 2 * hier.iteration_time


class TestNetworkScaling:
    def test_bandwidth_speeds_iterations(self, vgg):
        slow_cluster = paper_cluster("10gbps")
        fast_cluster = paper_cluster("100gbps")
        slow = simulate_iteration(
            vgg, slow_cluster, pytorch_ddp_system(CommCostModel(slow_cluster))
        )
        fast = simulate_iteration(
            vgg, fast_cluster, pytorch_ddp_system(CommCostModel(fast_cluster))
        )
        assert fast.iteration_time < slow.iteration_time

    def test_compression_gap_grows_when_slow(self, vgg):
        def gap(network):
            cluster = paper_cluster(network)
            cost = CommCostModel(cluster)
            fp = simulate_epoch(vgg, cluster, bagua_system(cost, "allreduce")).epoch_time
            q = simulate_epoch(vgg, cluster, bagua_system(cost, "qsgd")).epoch_time
            return fp / q

        assert gap("10gbps") > gap("100gbps")


class TestStragglers:
    def test_sync_scales_with_slowest(self, vgg):
        base = ClusterSpec(num_nodes=2, workers_per_node=4)
        degraded = ClusterSpec(
            num_nodes=2, workers_per_node=4, straggler_slowdown={3: 2.0}
        )
        fast = simulate_iteration(vgg, base, bagua_system(CommCostModel(base), "allreduce"))
        slow = simulate_iteration(
            vgg, degraded, bagua_system(CommCostModel(degraded), "allreduce")
        )
        assert slow.compute_time > 1.8 * fast.compute_time

    def test_async_epoch_tolerates_straggler(self, vgg):
        base = paper_cluster("25gbps")
        degraded = paper_cluster("25gbps", straggler_slowdown={0: 2.2})
        uniform = simulate_epoch(vgg, base, bagua_system(CommCostModel(base), "async"))
        straggled = simulate_epoch(
            vgg, degraded, bagua_system(CommCostModel(degraded), "async")
        )
        assert straggled.epoch_time < 1.1 * uniform.epoch_time


class TestSystemProfiles:
    def test_plans_differ_by_bucket_policy(self, cost, vgg):
        from repro.core.profiler import profile_from_spec

        profile = profile_from_spec(vgg.layers)
        ddp_plan = pytorch_ddp_system(cost).plan(profile)
        horovod_plan = horovod_system(cost).plan(profile)
        byteps_plan = byteps_system(cost).plan(profile)
        # 4 MB chunks (BytePS) -> more buckets than 25 MB (DDP) -> more than 64 MB.
        assert byteps_plan.num_buckets > ddp_plan.num_buckets > horovod_plan.num_buckets

    def test_unknown_bagua_algorithm(self, cost):
        with pytest.raises(KeyError):
            bagua_system(cost, "sgd-prime")

    def test_fp16_horovod_cheaper_comm(self, cost, vgg):
        fp32 = simulate_iteration(vgg, cost.spec, horovod_system(cost))
        fp16 = simulate_iteration(vgg, cost.spec, horovod_system(cost, fp16=True))
        assert fp16.comm_time_total < fp32.comm_time_total
