"""Static analyzer: algorithm sweep, per-rule counterexamples, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.analysis import (
    AnalysisSubject,
    BucketExtent,
    CommTrace,
    ParamView,
    analyze_algorithm,
    run_checkers,
)


def fired_rules(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Positive sweep: every registered algorithm is clean on a 2x2 cluster.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY))
def test_registered_algorithm_passes_all_checkers(name):
    report = analyze_algorithm(name, num_nodes=2, gpus_per_node=2)
    assert report.ok, report.render()
    assert report.findings == []
    assert report.num_ops > 0
    # both the dry-run trace and (when planned) the lowered plan were checked
    assert any("dry-run" in s for s in report.sources)


# ----------------------------------------------------------------------
# Negative: each counterexample trips exactly its own rule.
# ----------------------------------------------------------------------
class TestRankSymmetry:
    def test_dropped_collective_on_rank_1(self):
        trace = CommTrace(world_size=4)
        group = (0, 1, 2, 3)
        for rank in (0, 2, 3):  # rank 1 never enters the collective
            trace.add(rank, "allreduce", bucket="b0", elements=64, group=group)
        findings = run_checkers(AnalysisSubject(world_size=4, trace=trace))
        assert fired_rules(findings) == {"rank-symmetry"}
        assert any(f.rank == 1 for f in findings)

    def test_size_mismatch_flags_first_divergent_op(self):
        trace = CommTrace(world_size=2)
        group = (0, 1)
        trace.add(0, "allreduce", bucket="b0", elements=64, group=group)
        trace.add(0, "allreduce", bucket="b1", elements=32, group=group)
        trace.add(1, "allreduce", bucket="b0", elements=64, group=group)
        trace.add(1, "allreduce", bucket="b1", elements=48, group=group)  # diverges
        findings = run_checkers(AnalysisSubject(world_size=2, trace=trace))
        assert fired_rules(findings) == {"rank-symmetry"}
        assert len(findings) == 1
        assert findings[0].seq == 1

    def test_symmetric_trace_is_clean(self):
        trace = CommTrace(world_size=2)
        for rank in (0, 1):
            trace.add(rank, "allreduce", bucket="b0", elements=64, group=(0, 1))
        assert run_checkers(AnalysisSubject(world_size=2, trace=trace)) == []


class TestPeerMatching:
    def test_asymmetric_gossip_peers(self):
        trace = CommTrace(world_size=4)
        group = (0, 1, 2, 3)
        peer_sets = {0: (1,), 1: (0,), 2: (3,), 3: (0,)}  # 3 lists 0; 0 lists only 1
        for rank, peers in peer_sets.items():
            trace.add(rank, "gossip", bucket="b0", elements=64, group=group, peers=peers)
        findings = run_checkers(AnalysisSubject(world_size=4, trace=trace))
        assert fired_rules(findings) == {"peer-matching"}

    def test_ring_topology_violation(self):
        trace = CommTrace(world_size=4)
        group = (0, 1, 2, 3)
        ring = {0: (3, 1), 1: (0, 2), 2: (1, 3), 3: (2, 0)}
        ring[1] = (0, 3)  # symmetric with 3's (2, 0)? keep it symmetric but off-ring
        ring[3] = (2, 0, 1)
        for rank, peers in ring.items():
            trace.add(rank, "gossip", bucket="b0", elements=64, group=group, peers=peers)
        subject = AnalysisSubject(world_size=4, trace=trace, expected_topology="ring")
        findings = run_checkers(subject)
        assert fired_rules(findings) == {"peer-matching"}
        assert any("ring" in f.message for f in findings)

    def test_unmatched_send(self):
        trace = CommTrace(world_size=2)
        trace.add(0, "send", peers=(1,), nbytes=256.0, round=0)
        findings = run_checkers(AnalysisSubject(world_size=2, trace=trace))
        assert fired_rules(findings) == {"peer-matching"}
        assert "no matching recv" in findings[0].message

    def test_matched_p2p_is_clean(self):
        trace = CommTrace(world_size=2)
        trace.add(0, "send", peers=(1,), nbytes=256.0, round=0)
        trace.add(1, "recv", peers=(0,), nbytes=256.0, round=0)
        assert run_checkers(AnalysisSubject(world_size=2, trace=trace)) == []


class TestOverlapRace:
    def test_opt_step_before_await(self):
        trace = CommTrace(world_size=1)
        trace.add(0, "issue", bucket="b0")
        trace.add(0, "opt_step", bucket="b0")  # races the in-flight reduction
        trace.add(0, "await", bucket="b0")
        findings = run_checkers(AnalysisSubject(world_size=1, trace=trace))
        assert fired_rules(findings) == {"overlap-race"}
        assert findings[0].bucket == "b0"

    def test_never_awaited_issue(self):
        trace = CommTrace(world_size=1)
        trace.add(0, "issue", bucket="b0")
        trace.add(0, "opt_step", bucket="b1")
        findings = run_checkers(AnalysisSubject(world_size=1, trace=trace))
        assert fired_rules(findings) == {"overlap-race"}
        assert any("never" in f.message for f in findings)

    def test_bucketless_write_races_any_outstanding_comm(self):
        trace = CommTrace(world_size=1)
        trace.add(0, "issue", bucket="b0")
        trace.add(0, "ef_write")  # empty bucket = touches everything
        trace.add(0, "await", bucket="b0")
        findings = run_checkers(AnalysisSubject(world_size=1, trace=trace))
        assert fired_rules(findings) == {"overlap-race"}

    def test_issue_await_write_is_clean(self):
        trace = CommTrace(world_size=1)
        trace.add(0, "issue", bucket="b0")
        trace.add(0, "await", bucket="b0")
        trace.add(0, "opt_step", bucket="b0")
        assert run_checkers(AnalysisSubject(world_size=1, trace=trace)) == []


class TestBufferAliasing:
    def test_overlapping_bucket_extents(self):
        layout = (
            BucketExtent("b0", 0, 100),
            BucketExtent("b1", 50, 150),  # intrudes into b0
        )
        findings = run_checkers(AnalysisSubject(world_size=1, layout=layout))
        assert fired_rules(findings) == {"buffer-aliasing"}

    def test_param_view_escapes_bucket(self):
        layout = (
            BucketExtent("b0", 0, 100, views=(ParamView("w", 0, 60), ParamView("b", 60, 110))),
        )
        findings = run_checkers(AnalysisSubject(world_size=1, layout=layout))
        assert fired_rules(findings) == {"buffer-aliasing"}
        assert "escapes" in findings[0].message

    def test_disjoint_layout_is_clean(self):
        layout = (
            BucketExtent("b0", 0, 100, views=(ParamView("w", 0, 100),)),
            BucketExtent("b1", 100, 150, views=(ParamView("v", 100, 150),)),
        )
        assert run_checkers(AnalysisSubject(world_size=1, layout=layout)) == []


class TestEFInvariant:
    def test_biased_compressor_without_error_feedback(self):
        trace = CommTrace(world_size=2)
        for rank in (0, 1):
            trace.add(
                rank,
                "compressed_allreduce",
                bucket="b0",
                elements=64,
                group=(0, 1),
                compressor="onebit",
                biased=True,
                error_feedback=False,
            )
        findings = run_checkers(AnalysisSubject(world_size=2, trace=trace))
        assert fired_rules(findings) == {"ef-invariant"}
        assert all(f.severity == "error" for f in findings)

    def test_biased_compressor_with_error_feedback_is_clean(self):
        trace = CommTrace(world_size=2)
        for rank in (0, 1):
            trace.add(
                rank,
                "compressed_allreduce",
                bucket="b0",
                elements=64,
                group=(0, 1),
                compressor="onebit",
                biased=True,
                error_feedback=True,
            )
        assert run_checkers(AnalysisSubject(world_size=2, trace=trace)) == []

    def test_unbiased_compressor_needs_no_error_feedback(self):
        trace = CommTrace(world_size=2)
        for rank in (0, 1):
            trace.add(
                rank,
                "compressed_allreduce",
                bucket="b0",
                elements=64,
                group=(0, 1),
                compressor="qsgd-8bit",
                biased=False,
                error_feedback=False,
            )
        assert run_checkers(AnalysisSubject(world_size=2, trace=trace)) == []


# ----------------------------------------------------------------------
# CLI: python -m repro analyze
# ----------------------------------------------------------------------
class TestCLI:
    def test_single_algorithm_exits_zero(self, capsys):
        assert main(["analyze", "allreduce"]) == 0
        out = capsys.readouterr().out
        assert "PASS allreduce" in out

    def test_json_output(self, capsys):
        assert main(["analyze", "qsgd", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "qsgd"
        assert payload["ok"] is True
        assert payload["findings"] == []

    def test_missing_algorithm_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "needs an algorithm" in capsys.readouterr().err

    def test_unknown_algorithm_is_usage_error(self, capsys):
        assert main(["analyze", "nonesuch"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_all_sweep_exits_zero(self, capsys):
        assert main(["analyze", "--all"]) == 0
        out = capsys.readouterr().out
        for name in ALGORITHM_REGISTRY:
            assert name in out
        assert "0 failing" in out
