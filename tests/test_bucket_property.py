"""Property tests: TensorBucket flattening is a bit-exact re-pointing.

The analyzer's buffer-aliasing rule assumes the fused buffer and the
per-parameter views are the *same* memory.  These Hypothesis tests pin that
contract for arbitrary shape partitions: flatten -> mutate the flat view ->
every parameter observes exactly its slice, bit for bit, and vice versa.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import TensorBucket, partition_into_buckets
from repro.tensor.tensor import Tensor

shapes = st.lists(
    st.lists(st.integers(1, 6), min_size=1, max_size=3).map(tuple),
    min_size=1,
    max_size=6,
)


def make_params(shape_list, seed):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.normal(size=shape)) for shape in shape_list]


@given(shape_list=shapes, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_flatten_mutate_roundtrip_bit_exact(shape_list, seed):
    params = make_params(shape_list, seed)
    before = [p.data.copy() for p in params]
    bucket = TensorBucket(params, name="b", flatten=True)

    # Flattening itself must not perturb a single bit.
    for p, ref in zip(params, before):
        assert np.array_equal(p.data, ref)
        assert np.shares_memory(p.data, bucket.buffer)

    # Mutating through the flat view is observed exactly by each param view.
    new = np.random.default_rng(seed + 1).normal(size=bucket.total_elements)
    bucket.flat_data()[...] = new
    for p, lo, hi in bucket.param_slices():
        assert np.array_equal(p.data.reshape(-1), new[lo:hi])

    # ... and the other direction: writing a param shows up in the flat view.
    params[0].data[...] = 7.25  # exactly representable
    assert np.array_equal(
        bucket.flat_data()[: params[0].data.size],
        np.full(params[0].data.size, 7.25),
    )


@given(shape_list=shapes, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_unflattened_set_flat_data_roundtrip(shape_list, seed):
    params = make_params(shape_list, seed)
    bucket = TensorBucket(params, name="b", flatten=False)
    assert bucket.buffer is None

    # flat_data is a gather copy: mutating it must NOT touch the params.
    before = [p.data.copy() for p in params]
    flat = bucket.flat_data()
    flat += 1.0
    for p, ref in zip(params, before):
        assert np.array_equal(p.data, ref)

    # set_flat_data scatters back bit-exactly.
    new = np.random.default_rng(seed + 1).normal(size=bucket.total_elements)
    bucket.set_flat_data(new)
    for p, lo, hi in bucket.param_slices():
        assert np.array_equal(p.data.reshape(-1), new[lo:hi])


@given(
    shape_list=shapes,
    seed=st.integers(0, 2**31 - 1),
    bucket_bytes=st.floats(min_value=8.0, max_value=2048.0),
)
@settings(max_examples=40, deadline=None)
def test_partition_covers_every_param_once_in_order(shape_list, seed, bucket_bytes):
    params = make_params(shape_list, seed)
    buckets = partition_into_buckets(params, bucket_bytes)
    flattened = [p for bucket in buckets for p in bucket.params]
    assert [id(p) for p in flattened] == [id(p) for p in params]
    assert sum(b.total_elements for b in buckets) == sum(p.data.size for p in params)
