"""ClusterSpec: rank/node arithmetic, stragglers, jitter."""

import math

import pytest

from repro.cluster import ClusterSpec, NVLINK, TCP_10G, paper_cluster


class TestLayout:
    def test_world_size(self):
        assert ClusterSpec(num_nodes=3, workers_per_node=4).world_size == 12

    def test_node_of_is_node_major(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=4)
        assert [spec.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_local_rank(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=4)
        assert spec.local_rank(5) == 1

    def test_same_node(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=4)
        assert spec.same_node(0, 3)
        assert not spec.same_node(3, 4)

    def test_link_between(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=2, inter_node=TCP_10G)
        assert spec.link_between(0, 1) is spec.intra_node
        assert spec.link_between(1, 2) is TCP_10G

    def test_link_to_self_raises(self):
        with pytest.raises(ValueError):
            ClusterSpec().link_between(0, 0)

    def test_node_ranks(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=3)
        assert spec.node_ranks(1) == [3, 4, 5]

    def test_node_leaders(self):
        spec = ClusterSpec(num_nodes=3, workers_per_node=4)
        assert spec.node_leaders() == [0, 4, 8]

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=1, workers_per_node=2).node_of(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(workers_per_node=0)


class TestCompute:
    def test_compute_time_scales_with_flops(self):
        spec = ClusterSpec(worker_flops=1e12)
        assert spec.compute_time(2e12) == pytest.approx(2.0)

    def test_straggler_scale(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, straggler_slowdown={1: 2.0})
        assert spec.compute_scale(0) == 1.0
        assert spec.compute_scale(1) == 2.0
        assert spec.compute_time(1e12, rank=1) == 2 * spec.compute_time(1e12, rank=0)

    def test_straggler_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=1, workers_per_node=1, straggler_slowdown={5: 2.0})
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=1, workers_per_node=1, straggler_slowdown={0: 0.5})

    def test_negative_flops_raises(self):
        with pytest.raises(ValueError):
            ClusterSpec().compute_time(-1.0)


class TestJitter:
    def test_factor_grows_with_world_size(self):
        small = ClusterSpec(num_nodes=1, workers_per_node=2)
        big = ClusterSpec(num_nodes=16, workers_per_node=8)
        assert big.sync_jitter_factor() > small.sync_jitter_factor() > 1.0

    def test_factor_formula(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=2, compute_jitter_sigma=0.1)
        expected = 1.0 + 0.1 * math.sqrt(2 * math.log(4))
        assert spec.sync_jitter_factor() == pytest.approx(expected)

    def test_no_jitter_for_single_worker(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=1)
        assert spec.sync_jitter_factor() == 1.0

    def test_zero_sigma(self):
        spec = ClusterSpec(compute_jitter_sigma=0.0)
        assert spec.sync_jitter_factor() == 1.0


class TestPaperCluster:
    def test_shape(self):
        spec = paper_cluster("10gbps")
        assert spec.num_nodes == 16
        assert spec.workers_per_node == 8
        assert spec.world_size == 128
        assert spec.inter_node.name == "tcp-10g"
        assert spec.intra_node is NVLINK

    def test_straggler_passthrough(self):
        spec = paper_cluster("25gbps", straggler_slowdown={0: 2.2})
        assert spec.compute_scale(0) == 2.2
