"""Compression codecs: round-trip fidelity, wire sizes, error feedback."""

import numpy as np
import pytest

from repro.compression import (
    COMPRESSOR_REGISTRY,
    CompressedPayload,
    ErrorFeedback,
    FP16Compressor,
    IdentityCompressor,
    OneBitCompressor,
    QSGDCompressor,
    RandomKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
    make_compressor,
)

ALL_CODECS = [
    IdentityCompressor(),
    FP16Compressor(),
    QSGDCompressor(bits=8),
    QSGDCompressor(bits=4),
    OneBitCompressor(),
    TopKCompressor(ratio=0.1),
    RandomKCompressor(ratio=0.1),
    TernGradCompressor(),
    SignSGDCompressor(),
]


@pytest.fixture
def x(rng) -> np.ndarray:
    return rng.standard_normal(500)


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_shape_preserved(self, codec, x):
        out = codec.decompress(codec.compress(x))
        assert out.shape == x.shape

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_payload_metadata(self, codec, x):
        payload = codec.compress(x)
        assert isinstance(payload, CompressedPayload)
        assert payload.n == 500
        assert payload.wire_bytes == codec.wire_bytes(500)

    @pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
    def test_zero_vector(self, codec):
        out = codec.decompress(codec.compress(np.zeros(64)))
        np.testing.assert_allclose(out, np.zeros(64), atol=1e-12)

    def test_identity_is_lossless(self, x):
        codec = IdentityCompressor()
        np.testing.assert_array_equal(codec.decompress(codec.compress(x)), x)

    def test_fp16_small_error(self, x):
        codec = FP16Compressor()
        out = codec.decompress(codec.compress(x))
        assert np.abs(out - x).max() < 1e-2


class TestWireSizes:
    def test_ordering(self):
        n = 1 << 16
        fp32 = IdentityCompressor().wire_bytes(n)
        fp16 = FP16Compressor().wire_bytes(n)
        q8 = QSGDCompressor(bits=8).wire_bytes(n)
        onebit = OneBitCompressor().wire_bytes(n)
        assert fp32 > fp16 > q8 > onebit

    def test_compression_ratios(self):
        assert FP16Compressor().compression_ratio() == pytest.approx(2.0, rel=0.01)
        assert QSGDCompressor(bits=8).compression_ratio() == pytest.approx(4.0, rel=0.01)
        assert OneBitCompressor().compression_ratio() == pytest.approx(32.0, rel=0.01)

    def test_topk_wire_scales_with_ratio(self):
        n = 10_000
        assert TopKCompressor(0.01).wire_bytes(n) < TopKCompressor(0.1).wire_bytes(n)


class TestQSGD:
    def test_unbiased(self, rng):
        codec = QSGDCompressor(bits=4, rng=rng)
        x = rng.standard_normal(64)
        total = np.zeros_like(x)
        trials = 400
        for _ in range(trials):
            total += codec.decompress(codec.compress(x))
        np.testing.assert_allclose(total / trials, x, atol=0.08)

    def test_more_bits_less_error(self, rng):
        x = rng.standard_normal(2000)
        err4 = np.linalg.norm(
            QSGDCompressor(bits=4).decompress(QSGDCompressor(bits=4).compress(x)) - x
        )
        err8 = np.linalg.norm(
            QSGDCompressor(bits=8).decompress(QSGDCompressor(bits=8).compress(x)) - x
        )
        assert err8 < err4

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            QSGDCompressor(bits=1)
        with pytest.raises(ValueError):
            QSGDCompressor(bits=20)


class TestOneBit:
    def test_preserves_signs(self, x):
        codec = OneBitCompressor()
        out = codec.decompress(codec.compress(x))
        positive = x > 0
        assert np.all((out > 0) == positive)

    def test_preserves_mean_magnitudes(self, x):
        codec = OneBitCompressor()
        out = codec.decompress(codec.compress(x))
        pos = x > 0
        assert out[pos].max() == pytest.approx(x[pos].mean())
        assert (-out[~pos]).max() == pytest.approx((-x[~pos]).mean())

    def test_all_positive_input(self):
        codec = OneBitCompressor()
        x = np.abs(np.random.default_rng(0).standard_normal(32)) + 0.1
        out = codec.decompress(codec.compress(x))
        assert np.all(out > 0)


class TestSparsifiers:
    def test_topk_keeps_largest(self, rng):
        x = rng.standard_normal(100)
        codec = TopKCompressor(ratio=0.05)
        out = codec.decompress(codec.compress(x))
        kept = np.nonzero(out)[0]
        assert len(kept) == 5
        threshold = np.sort(np.abs(x))[-5]
        assert np.all(np.abs(x[kept]) >= threshold - 1e-12)

    def test_topk_exact_on_kept(self, rng):
        x = rng.standard_normal(50)
        codec = TopKCompressor(ratio=0.2)
        out = codec.decompress(codec.compress(x))
        kept = np.nonzero(out)[0]
        np.testing.assert_array_equal(out[kept], x[kept])

    def test_topk_full_ratio_lossless(self, x):
        codec = TopKCompressor(ratio=1.0)
        np.testing.assert_allclose(codec.decompress(codec.compress(x)), x)

    def test_randomk_unbiased(self, rng):
        codec = RandomKCompressor(ratio=0.25, rng=rng)
        x = rng.standard_normal(40)
        total = np.zeros_like(x)
        trials = 600
        for _ in range(trials):
            total += codec.decompress(codec.compress(x))
        np.testing.assert_allclose(total / trials, x, atol=0.3)

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)
        with pytest.raises(ValueError):
            RandomKCompressor(ratio=1.5)


class TestTernAndSign:
    def test_terngrad_values_ternary(self, rng):
        codec = TernGradCompressor(rng=rng)
        x = rng.standard_normal(128)
        out = codec.decompress(codec.compress(x))
        scale = np.abs(x).max()
        unique = set(np.round(np.unique(out / scale), 9))
        assert unique <= {-1.0, 0.0, 1.0}

    def test_terngrad_unbiased(self, rng):
        codec = TernGradCompressor(rng=rng)
        x = rng.standard_normal(32)
        total = np.zeros_like(x)
        trials = 800
        for _ in range(trials):
            total += codec.decompress(codec.compress(x))
        np.testing.assert_allclose(total / trials, x, atol=0.15)

    def test_signsgd_scale(self, x):
        codec = SignSGDCompressor()
        out = codec.decompress(codec.compress(x))
        np.testing.assert_allclose(np.abs(out), np.abs(x).mean())


class TestErrorFeedback:
    def test_residual_invariant(self, rng):
        """compensated = Q(compensated) + residual' holds exactly."""
        ef = ErrorFeedback(OneBitCompressor())
        x = rng.standard_normal(64)
        payload = ef.compress(x, key="k")
        decompressed = ef.decompress(payload)
        residual = ef.residual("k", 64)
        np.testing.assert_allclose(decompressed + residual, x, atol=1e-12)

    def test_accumulates_over_steps(self, rng):
        """Sum of transmitted values approaches sum of true values."""
        ef = ErrorFeedback(OneBitCompressor())
        true_total = np.zeros(32)
        sent_total = np.zeros(32)
        for _ in range(50):
            g = rng.standard_normal(32)
            true_total += g
            sent_total += ef.decompress(ef.compress(g, key="g"))
        # With error feedback the residual stays bounded, so the averages track.
        residual_norm = ef.total_residual_norm()
        np.testing.assert_allclose(sent_total + ef.residual("g", 32), true_total, atol=1e-9)
        assert residual_norm < 10.0

    def test_separate_keys_independent(self, rng):
        ef = ErrorFeedback(OneBitCompressor())
        ef.compress(rng.standard_normal(8), key="a")
        assert np.all(ef.residual("b", 8) == 0)

    def test_size_mismatch_raises(self, rng):
        ef = ErrorFeedback(OneBitCompressor())
        ef.compress(rng.standard_normal(8), key="a")
        with pytest.raises(ValueError):
            ef.residual("a", 16)

    def test_reset(self, rng):
        ef = ErrorFeedback(OneBitCompressor())
        ef.compress(rng.standard_normal(8), key="a")
        ef.reset()
        assert ef.total_residual_norm() == 0.0


class TestRegistry:
    def test_all_names_constructible(self):
        for name in COMPRESSOR_REGISTRY:
            codec = make_compressor(name)
            assert codec.wire_bytes(100) > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_compressor("zip9000")

    def test_kwargs_passthrough(self):
        codec = make_compressor("qsgd8", bits=4)
        assert codec.bits == 4
