"""Training algorithms: semantics, convergence, registry."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHM_REGISTRY,
    AllreduceSGD,
    AsyncSGD,
    DecentralizedSGD,
    LocalSGD,
    LowPrecisionDecentralizedSGD,
    OneBitAdam,
    QSGD,
    SUPPORT_MATRIX,
    make_algorithm,
    support_matrix_rows,
)
from repro.cluster import ClusterSpec
from repro.training import DistributedTrainer, get_task

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)


def train(algorithm, task_name="VGG16", epochs=2, seed=0):
    task = get_task(task_name)
    trainer = DistributedTrainer(
        WORLD, task.model_factory, task.make_optimizer, algorithm, seed=seed
    )
    loaders = task.make_loaders(WORLD.world_size, seed=seed)
    record = trainer.train(loaders, task.loss_fn, epochs=epochs)
    return trainer, record


def states_of(trainer):
    return [w.model.state_dict() for w in trainer.engine.workers]


class TestAllreduce:
    def test_loss_decreases(self):
        _, record = train(AllreduceSGD())
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_replicas_identical(self):
        trainer, _ = train(AllreduceSGD())
        states = states_of(trainer)
        for other in states[1:]:
            for name in states[0]:
                np.testing.assert_allclose(other[name], states[0][name], atol=1e-12)


class TestQSGD:
    def test_tracks_allreduce(self):
        _, exact = train(AllreduceSGD())
        _, quant = train(QSGD())
        assert abs(quant.epoch_losses[-1] - exact.epoch_losses[-1]) < 0.5

    def test_replicas_identical(self):
        # QSGD's phase-2 payload is broadcast, so replicas stay in sync.
        trainer, _ = train(QSGD())
        states = states_of(trainer)
        for other in states[1:]:
            for name in states[0]:
                np.testing.assert_allclose(other[name], states[0][name], atol=1e-12)


class TestOneBitAdam:
    def test_warmup_then_compressed_runs(self):
        _, record = train(OneBitAdam(lr=0.001, warmup_steps=4), epochs=2)
        assert len(record.epoch_losses) >= 1

    def test_requires_warmup(self):
        with pytest.raises(ValueError):
            OneBitAdam(warmup_steps=0)

    def test_converges_on_token_task(self):
        _, record = train(
            OneBitAdam(lr=0.002, warmup_steps=4), task_name="BERT-BASE", epochs=3
        )
        assert not record.diverged
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_diverges_on_conv_task(self):
        # The paper's Figure 6: 1-bit Adam cannot train VGG16.
        _, record = train(OneBitAdam(lr=0.002, warmup_steps=6), epochs=5)
        assert record.diverged


class TestDecentralized:
    def test_workers_diverge_but_stay_close(self):
        trainer, record = train(DecentralizedSGD(topology="random"))
        states = states_of(trainer)
        name = next(iter(states[0]))
        # Replicas are NOT identical (no global sync) ...
        assert any(
            not np.array_equal(states[0][name], s[name]) for s in states[1:]
        )
        # ... but converge as a population.
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_ring_topology(self):
        _, record = train(DecentralizedSGD(topology="ring"))
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            DecentralizedSGD(topology="mesh")

    def test_low_precision_variant(self):
        _, record = train(LowPrecisionDecentralizedSGD())
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_low_precision_views_track_weights(self):
        trainer, _ = train(LowPrecisionDecentralizedSGD(), epochs=1)
        # Each worker's neighbor views exist for exactly its ring neighbors.
        for i, worker in enumerate(trainer.engine.workers):
            neighbors = worker.state["neighbors"]
            view_keys = set(worker.state["views"][0].keys())
            assert view_keys == {i, *neighbors}


class TestAsync:
    def test_converges(self):
        _, record = train(AsyncSGD())
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_pull_interval_validation(self):
        with pytest.raises(ValueError):
            AsyncSGD(pull_interval=0)

    def test_staleness_hurts(self):
        _, fresh = train(AsyncSGD(pull_interval=1), task_name="BERT-BASE", epochs=3)
        _, stale = train(AsyncSGD(pull_interval=3), task_name="BERT-BASE", epochs=3)
        assert stale.epoch_losses[-1] > fresh.epoch_losses[-1]

    def test_scale_by_world_divides_lr(self):
        task = get_task("VGG16")
        algo = AsyncSGD(lr=0.8, scale_by_world=True)
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, algo, seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        trainer.train(loaders, task.loss_fn, epochs=1)
        assert algo.lr == pytest.approx(0.2)


class TestLocalSGD:
    def test_synchronizes_every_frequency(self):
        task = get_task("VGG16")
        algo = LocalSGD(frequency=2)
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, algo, seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        # Run exactly 2 steps manually: after step 2 replicas must agree.
        batches1 = [next(loader.epoch()) for loader in loaders]
        trainer.engine.step(batches1, task.loss_fn)
        states = states_of(trainer)
        name = next(iter(states[0]))
        assert any(not np.array_equal(states[0][name], s[name]) for s in states[1:])
        trainer.engine.step(batches1, task.loss_fn)
        states = states_of(trainer)
        for other in states[1:]:
            np.testing.assert_allclose(other[name], states[0][name], atol=1e-12)

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            LocalSGD(frequency=0)

    def test_converges(self):
        _, record = train(LocalSGD(frequency=2))
        assert record.epoch_losses[-1] < record.epoch_losses[0]


class TestRegistry:
    def test_all_registered_names_construct(self):
        for name in ALGORITHM_REGISTRY:
            assert make_algorithm(name) is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_algorithm("sgd-prime")

    def test_support_matrix_covers_eight_combinations(self):
        assert len(SUPPORT_MATRIX) == 8
        combos = {(p.synchronization, p.precision, p.centralization) for p in SUPPORT_MATRIX}
        assert len(combos) == 8

    def test_bagua_supports_seven_of_eight(self):
        assert sum(p.bagua for p in SUPPORT_MATRIX) == 7

    def test_baselines_support_subset_of_bagua(self):
        for p in SUPPORT_MATRIX:
            for flag in (p.pytorch_ddp, p.horovod, p.byteps):
                if flag:
                    assert p.bagua

    def test_rows_render(self):
        rows = support_matrix_rows()
        assert len(rows) == 8
        assert all("BAGUA" in r for r in rows)
