"""BAGUA primitives: C_FP_S, C_LP_S, D_FP_S, D_LP_S and peer selectors."""

import numpy as np
import pytest

from repro.compression import ErrorFeedback, IdentityCompressor, OneBitCompressor, QSGDCompressor
from repro.core import RandomPeers, RingPeers, c_fp_s, c_lp_s, d_fp_s, d_lp_s

from .conftest import make_group


@pytest.fixture
def arrays(rng, group):
    return [rng.standard_normal(37) for _ in range(group.size)]


class TestCFPS:
    def test_sum_semantics(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        for out in c_fp_s(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_hierarchical_same_result(self, group, arrays):
        flat = c_fp_s(arrays, group)
        hier = c_fp_s(arrays, make_group(2, 4), hierarchical=True)
        # Re-run on a fresh group because transports accumulate state.
        np.testing.assert_allclose(hier[0], flat[0], atol=1e-10)


class TestCLPS:
    def test_identity_codec_exact(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        for out in c_lp_s(arrays, group, compressor=IdentityCompressor()):
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_qsgd_close(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        outs = c_lp_s(arrays, group, compressor=QSGDCompressor(bits=8))
        err = np.linalg.norm(outs[0] - expected) / np.linalg.norm(expected)
        assert err < 0.15

    def test_error_feedback_requires_both_sides(self, group, arrays):
        efs = [ErrorFeedback(OneBitCompressor()) for _ in range(group.size)]
        with pytest.raises(ValueError):
            c_lp_s(arrays, group, compressor=OneBitCompressor(), worker_errors=efs)

    def test_error_feedback_wrong_count(self, group, arrays):
        efs = [ErrorFeedback(OneBitCompressor())]
        with pytest.raises(ValueError):
            c_lp_s(
                arrays, group, compressor=OneBitCompressor(),
                worker_errors=efs, server_errors=efs,
            )

    def test_error_feedback_improves_repeated_aggregation(self, rng):
        """Averaged over steps, EF-compensated 1-bit tracks the true sums."""
        codec = OneBitCompressor()
        n = 4
        group_ef = make_group(2, 2)
        worker_efs = [ErrorFeedback(codec) for _ in range(n)]
        server_efs = [ErrorFeedback(codec) for _ in range(n)]

        true_running = np.zeros(32)
        ef_running = np.zeros(32)
        plain_running = np.zeros(32)
        group_plain = make_group(2, 2)
        for _ in range(40):
            step_arrays = [rng.standard_normal(32) for _ in range(n)]
            true_running += np.sum(step_arrays, axis=0)
            ef_running += c_lp_s(
                step_arrays, group_ef, compressor=codec,
                worker_errors=worker_efs, server_errors=server_efs,
            )[0]
            plain_running += c_lp_s(step_arrays, group_plain, compressor=codec)[0]

        ef_err = np.linalg.norm(ef_running - true_running)
        plain_err = np.linalg.norm(plain_running - true_running)
        assert ef_err < plain_err

    def test_compressed_bytes_on_wire(self, rng):
        arrays = [rng.standard_normal(1024) for _ in range(4)]
        g_fp = make_group(2, 2)
        c_fp_s(arrays, g_fp)
        g_lp = make_group(2, 2)
        c_lp_s(arrays, g_lp, compressor=OneBitCompressor())
        assert g_lp.transport.stats.total_bytes < g_fp.transport.stats.total_bytes / 10


class TestPeerSelectors:
    def test_ring_neighbors(self):
        peers = RingPeers().neighbors(5, step=0)
        assert peers[0] == [4, 1]
        assert peers[3] == [2, 4]

    def test_ring_two_members(self):
        assert RingPeers().neighbors(2, step=0) == [[1], [0]]

    def test_ring_single(self):
        assert RingPeers().neighbors(1, step=0) == [[]]

    def test_random_pairing_is_symmetric(self):
        for step in range(10):
            peers = RandomPeers(seed=3).neighbors(8, step)
            for i, neigh in enumerate(peers):
                for j in neigh:
                    assert i in peers[j]

    def test_random_pairing_changes_with_step(self):
        a = RandomPeers(seed=0).neighbors(8, step=1)
        b = RandomPeers(seed=0).neighbors(8, step=2)
        assert a != b

    def test_random_pairing_deterministic_per_step(self):
        a = RandomPeers(seed=0).neighbors(8, step=5)
        b = RandomPeers(seed=0).neighbors(8, step=5)
        assert a == b

    def test_random_odd_world_leaves_one_idle(self):
        peers = RandomPeers(seed=0).neighbors(7, step=0)
        idle = [i for i, neigh in enumerate(peers) if not neigh]
        assert len(idle) == 1


class TestDFPS:
    def test_ring_average(self, group, arrays):
        outs = d_fp_s(arrays, group, peers=RingPeers(), step=0)
        n = group.size
        for i in range(n):
            expected = (arrays[(i - 1) % n] + arrays[i] + arrays[(i + 1) % n]) / 3
            np.testing.assert_allclose(outs[i], expected, atol=1e-10)

    def test_preserves_global_mean(self, group, arrays):
        outs = d_fp_s(arrays, group, peers=RingPeers(), step=0)
        np.testing.assert_allclose(
            np.mean(outs, axis=0), np.mean(arrays, axis=0), atol=1e-10
        )

    def test_random_pairs_average(self, group, arrays):
        peers = RandomPeers(seed=1)
        outs = d_fp_s(arrays, group, peers=peers, step=3)
        neighbor_sets = peers.neighbors(group.size, 3)
        for i, neigh in enumerate(neighbor_sets):
            if neigh:
                expected = (arrays[i] + arrays[neigh[0]]) / 2
                np.testing.assert_allclose(outs[i], expected, atol=1e-10)
            else:
                np.testing.assert_allclose(outs[i], arrays[i])

    def test_only_neighbors_synchronize_clocks(self, rng):
        group = make_group(4, 1)
        arrays = [rng.standard_normal(10) for _ in range(4)]
        group.transport.compute(0, 100.0)  # rank 0 is far in the future
        d_fp_s(arrays, group, peers=RandomPeers(seed=0), step=0)
        # At least one rank not paired with 0 keeps a small clock.
        times = [group.transport.now(r) for r in range(4)]
        assert min(times) < 50.0

    def test_repeated_gossip_converges_to_consensus(self, rng):
        group = make_group(2, 4)
        arrays = [rng.standard_normal(8) for _ in range(8)]
        target = np.mean(arrays, axis=0)
        current = arrays
        for step in range(60):
            current = d_fp_s(current, group, peers=RandomPeers(seed=7), step=step)
        for out in current:
            np.testing.assert_allclose(out, target, atol=1e-3)


class TestGossipDtype:
    """d_fp_s/d_lp_s accumulate in float64 but must hand back the input dtype."""

    def test_d_fp_s_preserves_float32(self, rng, group):
        arrays = [rng.standard_normal(16).astype(np.float32) for _ in range(group.size)]
        outs = d_fp_s(arrays, group, peers=RingPeers())
        assert all(out.dtype == np.float32 for out in outs)

    def test_d_lp_s_preserves_float32(self, rng):
        group = make_group(2, 4)
        arrays = [rng.standard_normal(16).astype(np.float32) for _ in range(group.size)]
        outs = d_lp_s(arrays, group, compressor=IdentityCompressor(), peers=RingPeers())
        assert all(out.dtype == np.float32 for out in outs)

    def test_d_fp_s_float64_unchanged(self, rng, group):
        arrays = [rng.standard_normal(16) for _ in range(group.size)]
        outs = d_fp_s(arrays, group, peers=RingPeers())
        assert all(out.dtype == np.float64 for out in outs)


class TestDLPS:
    def test_identity_codec_matches_d_fp_s(self, group, arrays):
        lp = d_lp_s(arrays, group, compressor=IdentityCompressor(), peers=RingPeers())
        fp = d_fp_s(arrays, make_group(2, 4), peers=RingPeers())
        for a, b in zip(lp, fp):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_qsgd_close_to_full_precision(self, group, arrays):
        lp = d_lp_s(
            arrays, group, compressor=QSGDCompressor(bits=8), peers=RingPeers()
        )
        fp = d_fp_s(arrays, make_group(2, 4), peers=RingPeers())
        for a, b in zip(lp, fp):
            assert np.linalg.norm(a - b) / np.linalg.norm(b) < 0.05

    def test_compressed_traffic(self, rng):
        arrays = [rng.standard_normal(1024) for _ in range(8)]
        g_fp = make_group(2, 4)
        d_fp_s(arrays, g_fp, peers=RingPeers())
        g_lp = make_group(2, 4)
        d_lp_s(arrays, g_lp, compressor=QSGDCompressor(bits=8), peers=RingPeers())
        assert g_lp.transport.stats.total_bytes < g_fp.transport.stats.total_bytes / 2
