"""Gradient clipping and Monte-Carlo validation of the sync-jitter model."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.tensor import Tensor, clip_grad_norm, global_grad_norm


def params_with_grads(grads):
    out = []
    for g in grads:
        t = Tensor(np.zeros_like(np.asarray(g, dtype=float)), requires_grad=True)
        t.grad = np.asarray(g, dtype=float)
        out.append(t)
    return out


class TestGradClipping:
    def test_global_norm(self):
        params = params_with_grads([[3.0], [4.0]])
        assert global_grad_norm(params) == pytest.approx(5.0)

    def test_missing_grads_ignored(self):
        params = params_with_grads([[3.0]])
        params.append(Tensor(np.zeros(2), requires_grad=True))
        assert global_grad_norm(params) == pytest.approx(3.0)

    def test_clip_scales_down(self):
        params = params_with_grads([[3.0], [4.0]])
        returned = clip_grad_norm(params, max_norm=1.0)
        assert returned == pytest.approx(5.0)
        assert global_grad_norm(params) == pytest.approx(1.0)
        # Direction preserved.
        assert params[0].grad[0] == pytest.approx(0.6)

    def test_noop_when_within_bound(self):
        params = params_with_grads([[0.3], [0.4]])
        clip_grad_norm(params, max_norm=1.0)
        assert params[1].grad[0] == pytest.approx(0.4)

    def test_all_zero_grads(self):
        params = params_with_grads([[0.0, 0.0]])
        assert clip_grad_norm(params, max_norm=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm(params_with_grads([[1.0]]), max_norm=0.0)


class TestJitterModelValidation:
    def test_expected_max_matches_monte_carlo(self):
        """The analytic 1 + sigma*sqrt(2 ln n) barrier factor should sit a
        few percent above the empirical slowest-of-n mean (the asymptotic
        slightly over-estimates E[max] — a conservative barrier bound)."""
        rng = np.random.default_rng(0)
        sigma = 0.06
        for n in (8, 32, 128):
            draws = 1.0 + sigma * rng.standard_normal((4000, n))
            empirical = draws.max(axis=1).mean()
            spec = ClusterSpec(
                num_nodes=n, workers_per_node=1, compute_jitter_sigma=sigma
            )
            analytic = spec.sync_jitter_factor()
            assert analytic == pytest.approx(empirical, rel=0.05), n
            assert analytic >= empirical, n  # conservative side

    def test_factor_monotone_in_sigma(self):
        lo = ClusterSpec(compute_jitter_sigma=0.02).sync_jitter_factor()
        hi = ClusterSpec(compute_jitter_sigma=0.10).sync_jitter_factor()
        assert hi > lo
