"""Optimizers: update rules, state, flat-view stepping."""

import numpy as np
import pytest

from repro.tensor import Adam, AdamW, SGD, Tensor


def params_with_grads(values, grads):
    out = []
    for v, g in zip(values, grads):
        t = Tensor(np.array(v, dtype=float), requires_grad=True)
        t.grad = np.array(g, dtype=float)
        out.append(t)
    return out


class TestSGD:
    def test_plain_step(self):
        (p,) = params_with_grads([[1.0, 2.0]], [[0.5, 0.5]])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.95])

    def test_momentum_accumulates(self):
        (p,) = params_with_grads([[0.0]], [[1.0]])
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # v=1, x=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, x=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_nesterov(self):
        (p,) = params_with_grads([[0.0]], [[1.0]])
        opt = SGD([p], lr=1.0, momentum=0.9, nesterov=True)
        opt.step()  # v=1; update = g + 0.9*v = 1.9
        np.testing.assert_allclose(p.data, [-1.9])

    def test_weight_decay(self):
        (p,) = params_with_grads([[2.0]], [[0.0]])
        SGD([p], lr=0.5, weight_decay=0.1).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.5 * 0.2])

    def test_invalid_lr(self):
        (p,) = params_with_grads([[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)

    def test_nesterov_requires_momentum(self):
        (p,) = params_with_grads([[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, nesterov=True)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_dict_roundtrip(self):
        (p,) = params_with_grads([[0.0]], [[1.0]])
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()
        state = opt.state_dict()
        (q,) = params_with_grads([[0.0]], [[1.0]])
        opt2 = SGD([q], lr=1.0, momentum=0.9)
        opt2.load_state_dict(state)
        q.grad = np.array([1.0])
        opt2.step()
        np.testing.assert_allclose(q.data, [-1.9])

    def test_zero_grad(self):
        (p,) = params_with_grads([[1.0]], [[1.0]])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr * sign(g).
        (p,) = params_with_grads([[0.0]], [[3.0]])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-8)

    def test_matches_reference_two_steps(self):
        (p,) = params_with_grads([[1.0]], [[0.5]])
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        # Reference computed with the textbook Adam recursion.
        x, m, v = 1.0, 0.0, 0.0
        for t in (1, 2):
            g = 0.5
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            mh = m / (1 - 0.9 ** t)
            vh = v / (1 - 0.999 ** t)
            x -= 0.1 * mh / (np.sqrt(vh) + 1e-8)
            p.grad = np.array([g])
            opt.step()
        np.testing.assert_allclose(p.data, [x], atol=1e-12)

    def test_freeze_variance_keeps_v(self):
        (p,) = params_with_grads([[0.0]], [[1.0]])
        opt = Adam([p], lr=0.1)
        opt.step()
        v_before = opt._v[0].copy()
        opt.freeze_variance()
        p.grad = np.array([100.0])
        opt.step()
        np.testing.assert_allclose(opt._v[0], v_before)

    def test_state_dict_roundtrip(self):
        (p,) = params_with_grads([[0.0]], [[1.0]])
        opt = Adam([p], lr=0.1)
        opt.step()
        state = opt.state_dict()
        opt2 = Adam([Tensor(np.array([0.0]), requires_grad=True)], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2.t == 1
        np.testing.assert_allclose(opt2._m[0], opt._m[0])


class TestAdamW:
    def test_decoupled_decay(self):
        (p,) = params_with_grads([[1.0]], [[0.0]])
        AdamW([p], lr=0.1, weight_decay=0.5).step()
        # Pure decay (grad 0): x <- x - lr * wd * x = 0.95; Adam term ~0.
        np.testing.assert_allclose(p.data, [0.95], atol=1e-6)

    def test_decay_not_in_moments(self):
        (p,) = params_with_grads([[1.0]], [[0.0]])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.step()
        np.testing.assert_allclose(opt._m[0], [0.0])


class TestFlatViewStepping:
    def test_step_on_arrays_matches_step(self):
        (p1,) = params_with_grads([[1.0, 2.0]], [[0.1, 0.2]])
        (p2,) = params_with_grads([[1.0, 2.0]], [[0.1, 0.2]])
        opt1 = SGD([p1], lr=0.5, momentum=0.9)
        opt2 = SGD([p2], lr=0.5, momentum=0.9)
        opt1.step()
        opt2.step_on_arrays([p2.data], [p2.grad])
        np.testing.assert_allclose(p1.data, p2.data)

    def test_step_on_flat_buffer_updates_in_place(self):
        buffer = np.ones(4)
        grads = np.full(4, 0.5)
        opt = SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0.1)
        opt.step_on_arrays([buffer], [grads])
        np.testing.assert_allclose(buffer, np.full(4, 0.95))

    def test_missing_grad_treated_as_zero(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])
