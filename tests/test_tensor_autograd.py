"""Autograd core: arithmetic, broadcasting, backward, hooks."""

import numpy as np
import pytest

from repro.tensor import Tensor, ones, randn, tensor, zeros
from repro.tensor.tensor import _unbroadcast


def numeric_grad(f, x: Tensor, index, eps: float = 1e-6) -> float:
    x.data[index] += eps
    hi = f().item()
    x.data[index] -= 2 * eps
    lo = f().item()
    x.data[index] += eps
    return (hi - lo) / (2 * eps)


class TestBasics:
    def test_constructor_properties(self):
        t = Tensor(np.arange(6).reshape(2, 3), requires_grad=True, name="w")
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.numel() == 6
        assert t.name == "w"
        assert t.dtype.kind == "f"

    def test_factories(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((3,)).data.sum() == 3
        assert randn(4, 5, rng=np.random.default_rng(0)).shape == (4, 5)
        assert tensor([1.0, 2.0]).shape == (2,)

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_copy_is_independent(self):
        a = Tensor([1.0], requires_grad=True)
        b = a.copy()
        b.data[0] = 5.0
        assert a.data[0] == 1.0


class TestArithmeticBackward:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_mul_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3, 4])
        np.testing.assert_allclose(b.grad, [1, 2])

    def test_sub_and_neg(self):
        a = Tensor([2.0], requires_grad=True)
        ((-a) - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-2.0])

    def test_div_grad(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_pow_grad(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (1.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-0.25])

    def test_matmul_2d(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        expected = numeric_grad(lambda: (a @ b).sum(), a, (1, 2))
        assert abs(a.grad[1, 2] - expected) < 1e-6

    def test_matmul_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        expected = numeric_grad(lambda: (a @ b).sum(), b, (1, 2, 3))
        assert abs(b.grad[1, 2, 3] - expected) < 1e-6

    def test_broadcast_add_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2, 2, 2])

    def test_grad_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2 + a * 3).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)
        np.testing.assert_allclose(a.grad, np.ones((2, 6)))

    def test_transpose_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        (a.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(a.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem_grad_scatter(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1, 0, 0])

    def test_mean_grad(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [0.25] * 4)

    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [2.0, 20.0])

    def test_deep_chain_no_recursion(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 0.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_post_grad_hook_fires_once_with_final_grad(self):
        a = Tensor([1.0], requires_grad=True)
        seen = []
        a.register_post_grad_hook(lambda t: seen.append(t.grad.copy()))
        (a * 2 + a * 3).sum().backward()
        assert len(seen) == 1
        np.testing.assert_allclose(seen[0], [5.0])

    def test_hooks_fire_in_backward_order(self):
        a = Tensor([1.0], requires_grad=True, name="a")
        b = Tensor([1.0], requires_grad=True, name="b")
        order = []
        a.register_post_grad_hook(lambda t: order.append("a"))
        b.register_post_grad_hook(lambda t: order.append("b"))
        # b enters the graph later (closer to the loss) -> its hook fires first.
        ((a * 2) + b).sum().backward()
        assert order == ["b", "a"]

    def test_clear_post_grad_hooks(self):
        a = Tensor([1.0], requires_grad=True)
        seen = []
        a.register_post_grad_hook(lambda t: seen.append(1))
        a.clear_post_grad_hooks()
        (a * 1).sum().backward()
        assert seen == []

    def test_no_grad_flow_into_non_requires(self):
        a = Tensor([1.0], requires_grad=False)
        b = Tensor([1.0], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad is None
        assert b.grad is not None


class TestUnbroadcast:
    def test_extra_leading_dims(self):
        g = np.ones((4, 2, 3))
        out = _unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_size_one_dims(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_noop_when_equal(self):
        g = np.ones((2, 2))
        assert _unbroadcast(g, (2, 2)) is g
