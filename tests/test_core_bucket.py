"""Tensor buckets: flattening, aliasing, gradient views, partitioning."""

import numpy as np
import pytest

from repro.core import TensorBucket, partition_into_buckets
from repro.tensor import Tensor


def make_params(rng, shapes):
    return [Tensor(rng.standard_normal(s), requires_grad=True) for s in shapes]


class TestFlattening:
    def test_flat_data_is_view_of_shared_buffer(self, rng):
        params = make_params(rng, [(2, 3), (4,)])
        bucket = TensorBucket(params, flatten=True)
        flat = bucket.flat_data()
        # Mutating the flat view mutates the parameters: zero-copy.
        flat[0] = 42.0
        assert params[0].data[0, 0] == 42.0

    def test_parameters_repointed_into_buffer(self, rng):
        params = make_params(rng, [(3,), (2, 2)])
        original = [p.data.copy() for p in params]
        bucket = TensorBucket(params, flatten=True)
        for p, orig in zip(params, original):
            np.testing.assert_array_equal(p.data, orig)
        # In-place update through a parameter reflects in the flat view.
        params[1].data[0, 0] = -7.0
        assert bucket.flat_data()[3] == -7.0

    def test_unflattened_flat_data_is_copy(self, rng):
        params = make_params(rng, [(2,), (2,)])
        bucket = TensorBucket(params, flatten=False)
        flat = bucket.flat_data()
        flat[0] = 99.0
        assert params[0].data[0] != 99.0

    def test_set_flat_data_roundtrip_unflattened(self, rng):
        params = make_params(rng, [(2,), (3,)])
        bucket = TensorBucket(params, flatten=False)
        target = np.arange(5.0)
        bucket.set_flat_data(target)
        np.testing.assert_array_equal(params[0].data, [0, 1])
        np.testing.assert_array_equal(params[1].data, [2, 3, 4])

    def test_set_flat_data_shape_check(self, rng):
        bucket = TensorBucket(make_params(rng, [(2,)]), flatten=True)
        with pytest.raises(ValueError):
            bucket.set_flat_data(np.zeros(3))

    def test_empty_bucket_rejected(self):
        with pytest.raises(ValueError):
            TensorBucket([])


class TestGradients:
    def test_flat_grad_concatenates(self, rng):
        params = make_params(rng, [(2,), (3,)])
        params[0].grad = np.array([1.0, 2.0])
        params[1].grad = np.array([3.0, 4.0, 5.0])
        bucket = TensorBucket(params, flatten=True)
        np.testing.assert_array_equal(bucket.flat_grad(), [1, 2, 3, 4, 5])

    def test_missing_grad_is_zero(self, rng):
        params = make_params(rng, [(2,), (2,)])
        params[0].grad = np.ones(2)
        bucket = TensorBucket(params)
        np.testing.assert_array_equal(bucket.flat_grad(), [1, 1, 0, 0])

    def test_set_flat_grad_scatters(self, rng):
        params = make_params(rng, [(2,), (1, 2)])
        bucket = TensorBucket(params)
        bucket.set_flat_grad(np.arange(4.0))
        np.testing.assert_array_equal(params[1].grad, [[2, 3]])

    def test_grads_ready(self, rng):
        params = make_params(rng, [(2,), (2,)])
        bucket = TensorBucket(params)
        assert not bucket.grads_ready()
        for p in params:
            p.grad = np.zeros(2)
        assert bucket.grads_ready()

    def test_zero_grad(self, rng):
        params = make_params(rng, [(2,)])
        params[0].grad = np.ones(2)
        bucket = TensorBucket(params)
        bucket.zero_grad()
        assert params[0].grad is None


class TestPartitioning:
    def test_respects_byte_cap(self, rng):
        params = make_params(rng, [(100,)] * 10)
        buckets = partition_into_buckets(params, bucket_bytes=100 * 4 * 3)
        assert all(len(b) <= 3 for b in buckets)
        assert sum(len(b) for b in buckets) == 10

    def test_oversized_tensor_gets_own_bucket(self, rng):
        params = make_params(rng, [(10,), (1000,), (10,)])
        buckets = partition_into_buckets(params, bucket_bytes=200)
        assert [len(b) for b in buckets] == [1, 1, 1]

    def test_order_preserved(self, rng):
        params = make_params(rng, [(5,), (6,), (7,)])
        buckets = partition_into_buckets(params, bucket_bytes=1e9)
        assert buckets[0].params == params

    def test_invalid_cap(self, rng):
        with pytest.raises(ValueError):
            partition_into_buckets(make_params(rng, [(2,)]), bucket_bytes=0)

    def test_total_elements(self, rng):
        params = make_params(rng, [(3,), (2, 2)])
        bucket = TensorBucket(params)
        assert bucket.total_elements == 7
        assert bucket.nbytes_fp32 == 28.0
