"""Smoke tests: every example script runs end to end.

These double as integration tests of the public API surface the examples
advertise.  The heavyweight reproduce_paper script is exercised through its
argument parser with a stub experiment list instead of a full run.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=None):
    argv = argv if argv is not None else []
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "epoch 5" in out
        assert "traffic" in out

    def test_custom_algorithm(self, capsys):
        run_example("custom_algorithm.py")
        out = capsys.readouterr().out
        assert "less traffic" in out

    def test_algorithm_tradeoffs(self, capsys):
        run_example("algorithm_tradeoffs.py")
        out = capsys.readouterr().out
        assert "best BAGUA algorithm" in out
        assert "1bit-adam" in out

    def test_pipeline_visualization(self, capsys):
        run_example("pipeline_visualization.py")
        out = capsys.readouterr().out
        assert "Figure 2" in out and "compute |" in out

    def test_checkpoint_resume(self, capsys):
        run_example("checkpoint_resume.py")
        out = capsys.readouterr().out
        assert "round trip OK" in out

    def test_reproduce_paper_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_example("reproduce_paper.py", argv=["--help"])
        assert excinfo.value.code == 0
        assert "skip-convergence" in capsys.readouterr().out
