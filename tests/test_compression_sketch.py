"""Count-sketch codec: estimation quality, mergeability, wire size."""

import numpy as np
import pytest

from repro.compression import CountSketchCompressor, make_compressor


class TestCountSketch:
    def test_roundtrip_shape(self, rng):
        codec = CountSketchCompressor(compression=0.5, rows=3)
        x = rng.standard_normal(200)
        out = codec.decompress(codec.compress(x))
        assert out.shape == x.shape

    def test_recovers_sparse_heavy_hitters(self, rng):
        # A sketch excels at heavy hitters: plant a few large coordinates.
        x = np.zeros(1000)
        hot = rng.choice(1000, size=5, replace=False)
        x[hot] = rng.standard_normal(5) * 100
        codec = CountSketchCompressor(compression=0.3, rows=5)
        out = codec.decompress(codec.compress(x))
        np.testing.assert_allclose(out[hot], x[hot], atol=15.0)

    def test_wire_size_independent_of_content(self, rng):
        codec = CountSketchCompressor(compression=0.1, rows=3)
        dense = codec.compress(rng.standard_normal(1000))
        sparse = codec.compress(np.zeros(1000))
        assert dense.wire_bytes == sparse.wire_bytes == codec.wire_bytes(1000)

    def test_compression_ratio(self):
        codec = CountSketchCompressor(compression=0.1, rows=3)
        # ~10x fewer values, each fp32 vs fp32: ratio ~10.
        assert codec.compression_ratio(30_000) == pytest.approx(10.0, rel=0.05)

    def test_same_seed_parties_interoperate(self, rng):
        sender = CountSketchCompressor(compression=0.5, rows=3, seed=7)
        receiver = CountSketchCompressor(compression=0.5, rows=3, seed=7)
        x = rng.standard_normal(100)
        out = receiver.decompress(sender.compress(x))
        baseline = sender.decompress(sender.compress(x))
        np.testing.assert_array_equal(out, baseline)

    def test_different_seeds_do_not_interoperate(self, rng):
        sender = CountSketchCompressor(compression=0.5, rows=3, seed=1)
        receiver = CountSketchCompressor(compression=0.5, rows=3, seed=2)
        x = rng.standard_normal(100)
        mismatched = receiver.decompress(sender.compress(x))
        matched = sender.decompress(sender.compress(x))
        assert not np.allclose(mismatched, matched)

    def test_sketches_are_mergeable(self, rng):
        """sketch(a) + sketch(b) decodes like sketch(a + b) — the property
        that makes sketches usable inside aggregating primitives."""
        codec = CountSketchCompressor(compression=0.5, rows=3, seed=0)
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        pa = codec.compress(a)
        pb = codec.compress(b)
        merged = codec.compress(a + b)
        summed_tables = pa.fields["table"] + pb.fields["table"]
        np.testing.assert_allclose(summed_tables, merged.fields["table"], atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountSketchCompressor(compression=0.0)
        with pytest.raises(ValueError):
            CountSketchCompressor(rows=0)

    def test_registry(self):
        codec = make_compressor("sketch", compression=0.2)
        assert codec.compression == 0.2

    def test_estimation_error_shrinks_with_budget(self, rng):
        x = rng.standard_normal(500)
        small = CountSketchCompressor(compression=0.05, rows=3)
        big = CountSketchCompressor(compression=0.5, rows=3)
        err_small = np.linalg.norm(small.decompress(small.compress(x)) - x)
        err_big = np.linalg.norm(big.decompress(big.compress(x)) - x)
        assert err_big < err_small
