"""Profiler and execution optimizer: ready order, bucketing plans."""

import numpy as np
import pytest

from repro.core import (
    BaguaConfig,
    ExecutionOptimizer,
    GradientReadyProfiler,
    profile_from_spec,
)
from repro.models import LayerSpec
from repro.tensor import Linear, ReLU, Sequential, Tensor
from repro.tensor import functional as F


@pytest.fixture
def net(rng):
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))


def run_backward(net, rng):
    x = Tensor(rng.standard_normal((3, 4)))
    F.cross_entropy(net(x), np.array([0, 1, 1])).backward()


class TestProfiler:
    def test_records_all_parameters(self, net, rng):
        profiler = GradientReadyProfiler(net)
        profiler.install()
        run_backward(net, rng)
        profiler.uninstall()
        assert len(profiler.profile.records) == 4
        assert profiler.profile.total_elements == net.num_parameters()

    def test_ready_order_is_reverse_of_depth(self, net, rng):
        profiler = GradientReadyProfiler(net)
        profiler.install()
        run_backward(net, rng)
        names = profiler.profile.ordered_names()
        # The output layer's parameters become ready before the input layer's.
        assert names.index("2.weight") < names.index("0.weight")

    def test_ready_ordered_params(self, net, rng):
        profiler = GradientReadyProfiler(net)
        profiler.install()
        run_backward(net, rng)
        ordered = profiler.ready_ordered_params()
        assert len(ordered) == 4
        assert set(id(p) for p in ordered) == set(id(p) for p in net.parameters())

    def test_ready_ordered_before_run_raises(self, net):
        with pytest.raises(RuntimeError):
            GradientReadyProfiler(net).ready_ordered_params()

    def test_double_install_raises(self, net):
        profiler = GradientReadyProfiler(net)
        profiler.install()
        with pytest.raises(RuntimeError):
            profiler.install()

    def test_uninstall_stops_recording(self, net, rng):
        profiler = GradientReadyProfiler(net)
        profiler.install()
        run_backward(net, rng)
        count = len(profiler.profile.records)
        profiler.uninstall()
        run_backward(net, rng)
        assert len(profiler.profile.records) == count


class TestProfileFromSpec:
    def test_reverse_order(self):
        layers = [
            LayerSpec("a", 10, fwd_flops=1.0),
            LayerSpec("b", 20, fwd_flops=2.0),
        ]
        profile = profile_from_spec(layers)
        assert profile.ordered_names() == ["b", "a"]
        assert profile.total_elements == 30

    def test_flops_carried(self):
        layers = [LayerSpec("a", 10, fwd_flops=5.0)]
        profile = profile_from_spec(layers)
        assert profile.records[0].fwd_flops == 5.0
        assert profile.records[0].bwd_flops == 10.0  # default 2x


class TestExecutionOptimizer:
    def _profile(self, sizes):
        return profile_from_spec(
            [LayerSpec(f"l{i}", s, fwd_flops=0.0) for i, s in enumerate(sizes)]
        )

    def test_fusion_respects_cap(self):
        profile = self._profile([100] * 10)
        plan = ExecutionOptimizer(BaguaConfig(bucket_bytes=100 * 4 * 4)).plan(profile)
        assert all(len(b.records) <= 4 for b in plan.buckets)
        assert plan.total_elements == 1000

    def test_no_fusion_when_flatten_off(self):
        profile = self._profile([100] * 10)
        plan = ExecutionOptimizer(BaguaConfig(flatten=False)).plan(profile)
        assert plan.num_buckets == 10

    def test_ready_order_in_buckets(self):
        profile = self._profile([10, 20, 30])
        plan = ExecutionOptimizer(BaguaConfig(bucket_bytes=1e9)).plan(profile)
        # Single bucket containing records in ready (reverse layer) order.
        assert plan.num_buckets == 1
        assert plan.buckets[0].names == ["l2", "l1", "l0"]

    def test_communication_units_sorted_by_ready(self):
        profile = self._profile([1000, 1, 1])
        plan = ExecutionOptimizer(BaguaConfig(bucket_bytes=16)).plan(profile)
        units = plan.communication_units()
        assert [u.ready_index for u in units] == sorted(u.ready_index for u in units)

    def test_empty_profile_rejected(self):
        from repro.core.profiler import ExecutionProfile

        with pytest.raises(ValueError):
            ExecutionOptimizer().plan(ExecutionProfile())

    def test_config_describe(self):
        assert BaguaConfig(True, False, True).describe() == "O=1,F=0,H=1"
