"""Baseline systems: convergence parity with allreduce, PS substrate."""

import numpy as np
import pytest

from repro.algorithms import AllreduceSGD
from repro.baselines import (
    BASELINE_REGISTRY,
    BytePS,
    Horovod,
    PyTorchDDP,
    ShardedParameterServer,
    VanillaDPSG,
)
from repro.cluster import ClusterSpec, Transport
from repro.comm import CommGroup
from repro.training import DistributedTrainer, get_task

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)


def train(algorithm, epochs=2, seed=0):
    task = get_task("VGG16")
    trainer = DistributedTrainer(
        WORLD, task.model_factory, task.make_optimizer, algorithm, seed=seed
    )
    loaders = task.make_loaders(WORLD.world_size, seed=seed)
    return trainer, trainer.train(loaders, task.loss_fn, epochs=epochs)


class TestConvergenceParity:
    """Figure 5: every sync system produces the same training trajectory."""

    @pytest.fixture(scope="class")
    def reference_losses(self):
        _, record = train(AllreduceSGD())
        return record.epoch_losses

    @pytest.mark.parametrize(
        "algorithm_factory",
        [PyTorchDDP, Horovod, BytePS, VanillaDPSG],
        ids=["ddp", "horovod", "byteps", "vanilla"],
    )
    def test_exact_match_with_allreduce(self, algorithm_factory, reference_losses):
        _, record = train(algorithm_factory())
        np.testing.assert_allclose(record.epoch_losses, reference_losses, atol=1e-9)

    def test_horovod_fp16_close_but_not_exact(self, reference_losses):
        _, record = train(Horovod(fp16=True))
        np.testing.assert_allclose(record.epoch_losses, reference_losses, atol=1e-2)

    def test_async_byteps_differs(self, reference_losses):
        _, record = train(BytePS(asynchronous=True))
        assert not np.allclose(record.epoch_losses, reference_losses, atol=1e-9)
        assert record.epoch_losses[-1] < record.epoch_losses[0]


class TestParameterServer:
    def make_ps(self, size=20):
        transport = Transport(WORLD)
        group = CommGroup(transport, list(range(WORLD.world_size)))
        initial = np.arange(float(size))
        return ShardedParameterServer(group, initial), group

    def test_shards_partition_parameters(self):
        ps, _ = self.make_ps()
        np.testing.assert_array_equal(ps.parameters(), np.arange(20.0))
        assert ps.num_shards == 2  # one server per node
        assert sum(len(s) for s in ps.shards) == 20

    def test_push_accumulates(self):
        ps, _ = self.make_ps()
        ps.push_gradients(1, np.ones(20))
        ps.push_gradients(2, np.ones(20))
        ps.apply_accumulated(lambda params, acc: params - 0.5 * acc)
        np.testing.assert_allclose(ps.parameters(), np.arange(20.0) - 1.0)

    def test_custom_apply_fn(self):
        ps, _ = self.make_ps()
        seen = []
        ps.push_gradients(0, np.ones(20), apply_fn=lambda i, g, s: seen.append(i))
        assert seen == [0, 1]

    def test_pull_returns_current(self):
        ps, _ = self.make_ps()
        out = ps.pull_parameters(3)
        np.testing.assert_array_equal(out, np.arange(20.0))

    def test_push_size_checked(self):
        ps, _ = self.make_ps()
        with pytest.raises(ValueError):
            ps.push_gradients(0, np.ones(7))

    def test_traffic_accounted(self):
        ps, group = self.make_ps()
        before = group.transport.stats.total_bytes
        ps.push_gradients(1, np.ones(20))
        assert group.transport.stats.total_bytes > before

    def test_local_push_free(self):
        ps, group = self.make_ps()
        # Rank 0 hosts server shard 0: pushing from rank 0 only sends shard 1.
        ps.push_gradients(0, np.ones(20))
        inter = group.transport.stats.inter_node_bytes
        assert inter == pytest.approx(10 * 8, rel=0.1)


class TestRegistry:
    def test_registry_names(self):
        assert set(BASELINE_REGISTRY) == {"vanilla", "pytorch-ddp", "horovod", "byteps"}

    def test_names_on_instances(self):
        assert PyTorchDDP().name == "pytorch-ddp"
        assert Horovod().name == "horovod"
        assert Horovod(fp16=True).name == "horovod-16bit"
        assert BytePS().name == "byteps"
        assert BytePS(asynchronous=True).name == "byteps-async"
