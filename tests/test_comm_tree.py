"""Binomial-tree collectives: correctness and round counts."""

import math

import numpy as np
import pytest

from repro.comm import tree_allreduce, tree_broadcast, tree_reduce

from .conftest import make_group


@pytest.mark.parametrize("nodes,workers", [(1, 1), (1, 2), (2, 2), (2, 4), (3, 3)])
class TestTreeCollectives:
    def test_broadcast_delivers(self, rng, nodes, workers):
        group = make_group(nodes, workers)
        x = rng.standard_normal(11)
        for out in tree_broadcast(x, group):
            np.testing.assert_array_equal(out, x)

    def test_reduce_sums(self, rng, nodes, workers):
        group = make_group(nodes, workers)
        arrays = [rng.standard_normal(7) for _ in range(group.size)]
        total = tree_reduce(arrays, group)
        np.testing.assert_allclose(total, np.sum(arrays, axis=0), atol=1e-10)

    def test_allreduce(self, rng, nodes, workers):
        group = make_group(nodes, workers)
        arrays = [rng.standard_normal(7) for _ in range(group.size)]
        expected = np.sum(arrays, axis=0)
        for out in tree_allreduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-10)


class TestTreeStructure:
    def test_log_rounds(self, rng):
        group = make_group(2, 4)
        tree_broadcast(rng.standard_normal(5), group)
        assert group.transport.stats.rounds == math.ceil(math.log2(8))

    def test_broadcast_message_count(self, rng):
        group = make_group(2, 4)
        tree_broadcast(rng.standard_normal(5), group)
        # A broadcast must inform n-1 members, one message each.
        assert group.transport.stats.messages == 7

    def test_nonzero_root(self, rng):
        group = make_group(2, 2)
        arrays = [rng.standard_normal(4) for _ in range(4)]
        total = tree_reduce(arrays, group, root_index=2)
        np.testing.assert_allclose(total, np.sum(arrays, axis=0), atol=1e-10)

    def test_reduce_wrong_count(self, rng):
        group = make_group(2, 2)
        with pytest.raises(ValueError):
            tree_reduce([rng.standard_normal(3)], group)

    def test_tree_root_nic_cheaper_than_star(self, rng):
        """For large payloads and groups, the tree spreads the root's load."""
        from repro.comm import broadcast

        big = rng.standard_normal(500_000)
        star = make_group(4, 1)
        broadcast(big, star)
        star_time = star.transport.max_time()
        tree = make_group(4, 1)
        tree_broadcast(big, tree)
        tree_time = tree.transport.max_time()
        assert tree_time < star_time
