"""Happens-before engine tests: seeded defects, clean sweeps, witnesses.

One counterexample per ``hb-*`` rule — each a few-line trace with exactly
one planted bug — must fire *exactly* its rule and carry a printable
witness (what ``repro analyze --explain`` renders).  The positive direction
is covered twice: every registered algorithm and baseline analyzes clean
under ``hb=True`` (including the O/F/H × update-mode schedule sweep), and a
Hypothesis property in ``test_schedule_executor_hb.py`` checks arbitrary
generated schedules.
"""

import pytest

from repro.__main__ import main
from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.analysis import (
    HB_CHECKERS,
    AnalysisSubject,
    CommTrace,
    analyze_algorithm,
    build_hb,
    run_checkers,
)
from repro.baselines import BASELINE_REGISTRY
from repro.core import GATE_COMM_DONE, GATE_GRAD_READY


def fired_rules(findings):
    return {f.rule for f in findings}


def hb_check(subject):
    return run_checkers(subject, HB_CHECKERS)


# ----------------------------------------------------------------------
# Seeded defects: one per rule, exactly one rule fires, witness printable
# ----------------------------------------------------------------------
class TestSeededDefects:
    def _race_subject(self):
        # The optimizer steps on b0 while b0's reduction is still in flight
        # on the comm thread: both touch grad bytes [0, 64) unordered.
        trace = CommTrace(1)
        trace.add(0, "issue", bucket="b0", elements=64, thread="main",
                  start=0, stop=64)
        trace.add(0, "allreduce", bucket="b0", elements=64, group=(0,),
                  thread="comm", gate=GATE_GRAD_READY, start=0, stop=64)
        trace.add(0, "opt_step", bucket="b0", elements=64, thread="main",
                  start=0, stop=64)
        return AnalysisSubject(world_size=1, trace=trace)

    def test_update_on_unawaited_bucket_is_race(self):
        findings = hb_check(self._race_subject())
        assert fired_rules(findings) == {"hb-race"}
        assert len(findings) == 1

    def test_race_witness_names_both_events_and_ancestor(self):
        (finding,) = hb_check(self._race_subject())
        witness = "\n".join(finding.witness)
        assert "A:" in witness and "B:" in witness
        assert "allreduce" in witness and "opt_step" in witness
        assert "no happens-before path" in witness
        assert "last common predecessor" in witness  # the issue op
        assert "issue" in finding.explain()

    def test_awaited_update_is_ordered_and_clean(self):
        # Same shape, but the await (gated on the comm) orders the update.
        trace = CommTrace(1)
        trace.add(0, "issue", bucket="b0", elements=64, thread="main",
                  start=0, stop=64)
        trace.add(0, "allreduce", bucket="b0", elements=64, group=(0,),
                  thread="comm", gate=GATE_GRAD_READY, start=0, stop=64)
        trace.add(0, "await", bucket="b0", elements=64, thread="main",
                  gate=GATE_COMM_DONE, start=0, stop=64)
        trace.add(0, "opt_step", bucket="b0", elements=64, thread="main",
                  start=0, stop=64)
        assert hb_check(AnalysisSubject(world_size=1, trace=trace)) == []

    def _collective_order_deadlock_subject(self):
        # Rank 0 reduces b0 then b1; rank 1 reduces b1 then b0 — each waits
        # for the other inside its first collective: a provable wait cycle.
        trace = CommTrace(2)
        for rank, order in ((0, ("b0", "b1")), (1, ("b1", "b0"))):
            for bucket in order:
                trace.add(rank, "allreduce", bucket=bucket, elements=64,
                          group=(0, 1), peers=(1 - rank,))
        return AnalysisSubject(world_size=2, trace=trace)

    def test_collective_order_mismatch_is_deadlock(self):
        findings = hb_check(self._collective_order_deadlock_subject())
        assert fired_rules(findings) == {"hb-deadlock"}
        assert len(findings) == 1
        assert "wait cycle" in findings[0].message

    def test_deadlock_witness_shows_the_cycle(self):
        (finding,) = hb_check(self._collective_order_deadlock_subject())
        assert len(finding.witness) == 2  # one hop per blocked rank
        witness = "\n".join(finding.witness)
        assert "rank 0" in witness and "rank 1" in witness
        assert "waits for" in witness

    def _asymmetric_gossip_subject(self):
        # Rank 0 exchanges with rank 1, but rank 1's peer set is empty: the
        # recv rank 0 waits on is never posted.
        trace = CommTrace(2)
        trace.add(0, "gossip", bucket="b0", elements=64, group=(0, 1), peers=(1,))
        trace.add(1, "gossip", bucket="b0", elements=64, group=(0, 1), peers=())
        return AnalysisSubject(world_size=2, trace=trace)

    def test_asymmetric_gossip_peers_is_deadlock(self):
        findings = hb_check(self._asymmetric_gossip_subject())
        assert fired_rules(findings) == {"hb-deadlock"}
        assert len(findings) == 1
        assert "does not list rank 0" in findings[0].message

    def test_gossip_deadlock_witness_is_printable(self):
        (finding,) = hb_check(self._asymmetric_gossip_subject())
        assert finding.witness
        assert "never posted" in finding.explain()

    def test_mutual_gossip_peers_are_clean(self):
        trace = CommTrace(2)
        trace.add(0, "gossip", bucket="b0", elements=64, group=(0, 1), peers=(1,))
        trace.add(1, "gossip", bucket="b0", elements=64, group=(0, 1), peers=(0,))
        assert hb_check(AnalysisSubject(world_size=2, trace=trace)) == []

    def _lost_update_subject(self):
        # The error-feedback residual is rewritten on main while the
        # compressed collective (which reads+writes the same residual) runs
        # unordered on the comm thread.
        trace = CommTrace(1)
        trace.add(0, "ef_write", bucket="b0", elements=64, thread="main",
                  start=0, stop=64)
        trace.add(0, "compressed_allreduce", bucket="b0", elements=64,
                  group=(0,), thread="comm", compressor="onebit", biased=True,
                  error_feedback=True, start=0, stop=64)
        return AnalysisSubject(world_size=1, trace=trace)

    def test_unordered_ef_write_is_lost_update(self):
        findings = hb_check(self._lost_update_subject())
        assert fired_rules(findings) == {"hb-lost-update"}
        assert len(findings) == 1
        assert "residual" in findings[0].message

    def test_lost_update_witness_names_both_events(self):
        (finding,) = hb_check(self._lost_update_subject())
        witness = "\n".join(finding.witness)
        assert "ef_write" in witness and "compressed_allreduce" in witness

    def _staleness_subject(self, bound):
        # The step-3 update consumes the gradient computed at step 0.
        trace = CommTrace(1)
        trace.add(0, "issue", bucket="b0", elements=64, step=0, start=0, stop=64)
        trace.add(0, "opt_step", bucket="b0", elements=64, step=3,
                  start=0, stop=64)
        subject = AnalysisSubject(world_size=1, trace=trace)
        subject.notes["staleness_bound"] = bound
        return subject

    def test_stale_gradient_beyond_bound_fires(self):
        findings = hb_check(self._staleness_subject(bound=1))
        assert fired_rules(findings) == {"hb-staleness"}
        assert len(findings) == 1
        assert "3 step(s) old" in findings[0].message

    def test_staleness_witness_is_an_hb_path(self):
        (finding,) = hb_check(self._staleness_subject(bound=1))
        witness = "\n".join(finding.witness)
        assert "issue" in witness and "opt_step" in witness
        assert "staleness 3 > bound 1" in witness

    def test_staleness_within_bound_is_clean(self):
        assert hb_check(self._staleness_subject(bound=3)) == []

    def test_no_declared_bound_no_staleness_findings(self):
        trace = CommTrace(1)
        trace.add(0, "issue", bucket="b0", elements=64, step=0)
        trace.add(0, "opt_step", bucket="b0", elements=64, step=9)
        assert hb_check(AnalysisSubject(world_size=1, trace=trace)) == []


# ----------------------------------------------------------------------
# Engine structure
# ----------------------------------------------------------------------
class TestHBGraph:
    def test_missing_collective_partner_is_unsatisfiable_wait(self):
        trace = CommTrace(2)
        trace.add(0, "allreduce", bucket="b0", elements=64, group=(0, 1))
        findings = hb_check(AnalysisSubject(world_size=2, trace=trace))
        assert fired_rules(findings) == {"hb-deadlock"}
        assert "never issues a matching" in findings[0].message

    def test_send_recv_edge_orders_cross_rank_events(self):
        trace = CommTrace(2)
        trace.add(0, "send", nbytes=64.0, round=0, peers=(1,), match="m0")
        trace.add(1, "recv", nbytes=64.0, round=0, peers=(0,), match="m0")
        graph = build_hb(AnalysisSubject(world_size=2, trace=trace))
        send, recv = graph.events
        assert graph.happens_before(send, recv)
        assert not graph.happens_before(recv, send)

    def test_recv_without_send_blocks_forever(self):
        trace = CommTrace(2)
        trace.add(1, "recv", nbytes=64.0, round=0, peers=(0,), match="m0")
        findings = hb_check(AnalysisSubject(world_size=2, trace=trace))
        assert fired_rules(findings) == {"hb-deadlock"}
        assert "no matching send" in findings[0].message

    def test_collective_synchronizes_all_members(self):
        trace = CommTrace(2)
        for rank in (0, 1):
            trace.add(rank, "issue", bucket="b0", elements=64)
            trace.add(rank, "allreduce", bucket="b0", elements=64, group=(0, 1))
        graph = build_hb(AnalysisSubject(world_size=2, trace=trace))
        issue0 = graph.events[0]
        coll1 = next(
            e for e in graph.events
            if e.op.rank == 1 and e.op.kind == "allreduce"
        )
        # Rank 0's pre-collective event happens-before rank 1's collective.
        assert graph.happens_before(issue0, coll1)

    def test_graph_is_cached_on_subject(self):
        trace = CommTrace(1)
        trace.add(0, "opt_step", bucket="b0", elements=4)
        subject = AnalysisSubject(world_size=1, trace=trace)
        assert build_hb(subject) is build_hb(subject)


# ----------------------------------------------------------------------
# Positive sweep: registry + baselines are HB-clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ALGORITHM_REGISTRY) + sorted(BASELINE_REGISTRY))
def test_registry_and_baselines_hb_clean(name):
    report = analyze_algorithm(name, steps=3, hb=True)
    assert report.findings == [], report.render()
    assert "hb-race" in report.checkers


# ----------------------------------------------------------------------
# CLI: --hb and --explain
# ----------------------------------------------------------------------
class TestCLI:
    def test_hb_flag_single_algorithm(self, capsys):
        assert main(["analyze", "allreduce", "--hb", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "PASS allreduce" in out
        assert "updates=barrier" in out  # the schedule-variant sweep ran

    def test_hb_flag_accepts_baselines(self, capsys):
        assert main(["analyze", "horovod", "--hb", "--steps", "2"]) == 0
        assert "PASS horovod" in capsys.readouterr().out

    def test_explain_out_of_range_is_usage_error(self, capsys):
        assert main(["analyze", "allreduce", "--hb", "--steps", "2",
                     "--explain", "99"]) == 2
        assert "only" in capsys.readouterr().err

    def test_explain_negative_is_usage_error(self, capsys):
        assert main(["analyze", "allreduce", "--explain", "-1"]) == 2
        assert "non-negative" in capsys.readouterr().err
