"""Trainer, metrics, and task bundles (functional mode plumbing)."""

import numpy as np
import pytest

from repro.algorithms import AllreduceSGD
from repro.cluster import ClusterSpec
from repro.training import (
    ConvergenceRecord,
    DistributedTrainer,
    all_tasks,
    epochs_to_reach,
    get_task,
    make_accuracy_eval,
)

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)


class TestConvergenceRecord:
    def test_record_and_summaries(self):
        rec = ConvergenceRecord(label="x")
        rec.record_epoch(1.0, accuracy=0.5, sim_time=2.0)
        rec.record_epoch(0.5, accuracy=0.9, sim_time=4.0)
        assert rec.final_loss == 0.5
        assert rec.best_loss == 0.5
        assert rec.epoch_accuracies == [0.5, 0.9]
        assert "final_loss" in rec.summary()

    def test_divergence_detection(self):
        rec = ConvergenceRecord(label="x")
        rec.record_epoch(float("nan"))
        assert rec.diverged
        rec2 = ConvergenceRecord(label="y")
        rec2.record_epoch(1e9)
        assert rec2.diverged
        assert "DIVERGED" in rec2.summary()

    def test_empty_record_raises(self):
        with pytest.raises(ValueError):
            ConvergenceRecord(label="x").final_loss

    def test_epochs_to_reach(self):
        rec = ConvergenceRecord(label="x", epoch_losses=[3.0, 1.0, 0.4])
        assert epochs_to_reach(rec, 1.0) == 2
        assert epochs_to_reach(rec, 0.1) is None


class TestTasks:
    def test_five_tasks_matching_paper(self):
        names = [t.name for t in all_tasks()]
        assert names == ["VGG16", "BERT-LARGE", "BERT-BASE", "Transformer", "LSTM+AlexNet"]

    def test_get_task_unknown(self):
        with pytest.raises(KeyError):
            get_task("ResNet")

    @pytest.mark.parametrize("name", [t.name for t in all_tasks()])
    def test_task_components_runnable(self, name):
        task = get_task(name)
        model = task.model_factory(np.random.default_rng(0))
        loaders = task.make_loaders(world_size=2, seed=0)
        batch = next(loaders[0].epoch())
        loss = task.loss_fn(model, batch)
        assert np.isfinite(loss.item())
        opt = task.make_optimizer(model)
        loss.backward()
        opt.step()

    def test_loaders_shard_disjointly(self):
        task = get_task("VGG16")
        loaders = task.make_loaders(world_size=4, seed=0)
        shards = [set(l.indices.tolist()) for l in loaders]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (shards[i] & shards[j])


class TestTrainer:
    def test_records_per_epoch(self):
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        record = trainer.train(loaders, task.loss_fn, epochs=2, label="run")
        assert record.label == "run"
        assert len(record.epoch_losses) == 2
        assert len(record.epoch_sim_times) == 2
        assert record.epoch_sim_times[1] > record.epoch_sim_times[0]

    def test_wrong_loader_count(self):
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(2, seed=0)
        with pytest.raises(ValueError):
            trainer.train(loaders, task.loss_fn, epochs=1)

    def test_deterministic_given_seed(self):
        task = get_task("VGG16")

        def run():
            trainer = DistributedTrainer(
                WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=3
            )
            loaders = task.make_loaders(WORLD.world_size, seed=3)
            return trainer.train(loaders, task.loss_fn, epochs=1).epoch_losses

        assert run() == run()

    def test_accuracy_eval(self):
        task = get_task("VGG16")
        dataset = task.dataset_factory(0)
        evaluate = make_accuracy_eval(dataset, task.predict, limit=64)
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        record = trainer.train(
            loaders, task.loss_fn, epochs=3, eval_fn=evaluate
        )
        assert len(record.epoch_accuracies) == 3
        # Training several epochs on the easy synthetic task lifts accuracy
        # well above the 10-class chance level.
        assert record.epoch_accuracies[-1] > 0.5

    def test_divergence_stops_early(self):
        task = get_task("VGG16")

        def hot_optimizer(model):
            from repro.tensor import SGD

            return SGD(model.parameters(), lr=500.0, momentum=0.9)

        trainer = DistributedTrainer(
            WORLD, task.model_factory, hot_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        record = trainer.train(loaders, task.loss_fn, epochs=10)
        assert record.diverged
        assert len(record.epoch_losses) < 10
