"""LSTM and attention blocks: shapes, gradients, behaviour."""

import numpy as np
import pytest

from repro.tensor import LSTM, LSTMCell, MultiHeadAttention, Tensor, TransformerEncoderLayer


class TestLSTMCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(5, 7, rng=rng)
        x = Tensor(rng.standard_normal((3, 5)))
        h, c = cell(x, cell.initial_state(3))
        assert h.shape == (3, 7)
        assert c.shape == (3, 7)

    def test_initial_state_zero(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        h, c = cell.initial_state(4)
        assert h.data.sum() == 0 and c.data.sum() == 0

    def test_gradients_flow_through_time(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)))
        h, c = cell.initial_state(2)
        for _ in range(3):
            h, c = cell(x, (h, c))
        h.sum().backward()
        assert cell.weight_hh.grad is not None
        assert np.abs(cell.weight_hh.grad).sum() > 0

    def test_numeric_grad(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 3)))

        def loss():
            h, c = cell(x, cell.initial_state(2))
            h2, _ = cell(x, (h, c))
            return (h2 ** 2).sum()

        cell.zero_grad()
        loss().backward()
        auto = cell.weight_ih.grad[2, 1]
        eps = 1e-6
        cell.weight_ih.data[2, 1] += eps
        hi = loss().item()
        cell.weight_ih.data[2, 1] -= 2 * eps
        lo = loss().item()
        cell.weight_ih.data[2, 1] += eps
        assert abs(auto - (hi - lo) / (2 * eps)) < 1e-5


class TestLSTM:
    def test_sequence_output_shape(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        out = lstm(Tensor(rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_last_hidden_matches_sequence_tail(self, rng):
        lstm = LSTM(4, 6, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 4)))
        full = lstm(x)
        last = lstm.last_hidden(x)
        np.testing.assert_allclose(full.data[:, -1, :], last.data, atol=1e-12)

    def test_hidden_depends_on_order(self, rng):
        lstm = LSTM(3, 5, rng=rng)
        x = rng.standard_normal((1, 4, 3))
        a = lstm.last_hidden(Tensor(x)).data
        b = lstm.last_hidden(Tensor(x[:, ::-1, :].copy())).data
        assert not np.allclose(a, b)


class TestAttention:
    def test_mha_shape(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        out = attn(Tensor(rng.standard_normal((2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_mha_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(8, 3)

    def test_attention_mixes_positions(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = rng.standard_normal((1, 4, 8))
        base = attn(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 0] += 1.0
        out = attn(Tensor(perturbed)).data
        # Changing position 0 should affect other positions' outputs.
        assert not np.allclose(base[0, 3], out[0, 3])

    def test_mha_gradients(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.q_proj.weight.grad is not None


class TestEncoderLayer:
    def test_shape_preserved(self, rng):
        enc = TransformerEncoderLayer(8, 2, 16, rng=rng)
        out = enc(Tensor(rng.standard_normal((2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_residual_path(self, rng):
        enc = TransformerEncoderLayer(8, 2, 16, rng=rng)
        # Zero out all projections: output should equal input (residuals).
        for _, p in enc.named_parameters():
            if p.data.ndim == 2:
                p.data[...] = 0
        x = rng.standard_normal((1, 3, 8))
        out = enc(Tensor(x))
        np.testing.assert_allclose(out.data, x, atol=1e-12)

    def test_all_params_receive_grad(self, rng):
        enc = TransformerEncoderLayer(8, 2, 16, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 8)))
        (enc(x) ** 2).sum().backward()
        for name, p in enc.named_parameters():
            assert p.grad is not None, name
