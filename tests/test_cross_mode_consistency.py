"""Cross-cutting consistency: functional traffic matches analytic volume,
and the quick functional figure experiments run end to end."""

import numpy as np
import pytest

from repro.algorithms import AllreduceSGD
from repro.cluster import ClusterSpec
from repro.experiments import fig5_convergence_systems, fig6_convergence_algorithms
from repro.training import DistributedTrainer, get_task

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)


class TestTrafficMatchesAnalyticVolume:
    def test_scatter_reduce_bytes_per_step(self):
        """Flat ScatterReduce moves exactly 2(n-1) x model bytes per step.

        This ties the engine, bucketing, primitive and transport accounting
        together: phase 1 ships (n-1)/n of each worker's tensor, phase 2
        ships each merged partition to n-1 members.
        """
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        steps = 0
        for batches in zip(*[loader.epoch() for loader in loaders]):
            trainer.engine.step(list(batches), task.loss_fn)
            steps += 1

        n = WORLD.world_size
        params = trainer.engine.workers[0].model.num_parameters()
        expected = steps * 2 * (n - 1) * params * 8  # float64 payloads
        measured = trainer.transport.stats.total_bytes
        assert measured == pytest.approx(expected, rel=0.05)

    def test_epoch_sim_time_scales_with_bytes(self):
        """Simulated communication time grows with traffic volume."""
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        record = trainer.train(loaders, task.loss_fn, epochs=2)
        t1, t2 = record.epoch_sim_times
        b1, b2 = record.epoch_comm_bytes
        # Cumulative time and bytes both roughly double after epoch two.
        assert t2 == pytest.approx(2 * t1, rel=0.15)
        assert b2 == pytest.approx(2 * b1, rel=0.01)


class TestFunctionalFigureExperiments:
    """Fast single-task versions of the Figure 5/6 harnesses."""

    def test_fig5_single_task(self):
        result = fig5_convergence_systems.run(
            tasks=[get_task("VGG16")], epochs=2
        )
        records = result.curves["VGG16"]
        assert set(records) == {
            "BAGUA (qsgd)", "PyTorch-DDP", "Horovod", "Horovod-16bit", "BytePS",
        }
        exact = [records[s].epoch_losses for s in ("PyTorch-DDP", "Horovod", "BytePS")]
        np.testing.assert_allclose(exact[0], exact[1], atol=1e-9)
        np.testing.assert_allclose(exact[0], exact[2], atol=1e-9)
        assert "Figure 5" in result.render()

    def test_fig6_single_task(self):
        result = fig6_convergence_algorithms.run(
            tasks=[get_task("BERT-BASE")], epochs=2
        )
        records = result.curves["BERT-BASE"]
        assert len(records) == 6
        for label, record in records.items():
            assert not record.diverged, label
        assert "Figure 6" in result.render()
