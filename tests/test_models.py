"""Model zoo: spec accounting vs Table 2, trainable proxies."""

import numpy as np
import pytest

from repro.experiments.paper_reference import TABLE2_MODELS
from repro.models import (
    BERTProxy,
    LSTMAlexNetProxy,
    LayerSpec,
    TransformerProxy,
    VGGProxy,
    all_specs,
    bert_base_proxy,
    bert_large_proxy,
    conv_layer,
    linear_layer,
    lstm_layer,
    vgg16_spec,
)


class TestLayerSpecs:
    def test_linear_accounting(self):
        spec = linear_layer("fc", 100, 50)
        assert spec.params == 100 * 50 + 50
        assert spec.fwd_flops == 2 * 100 * 50
        assert spec.bwd_flops == 2 * spec.fwd_flops

    def test_conv_accounting(self):
        spec = conv_layer("c", 3, 64, 3, 32)
        assert spec.params == 64 * 3 * 9 + 64
        assert spec.fwd_flops == 2 * 3 * 9 * 64 * 32 * 32

    def test_lstm_accounting(self):
        spec = lstm_layer("l", 10, 20, steps=5)
        assert spec.params == 4 * 20 * (10 + 20 + 1)
        assert spec.fwd_flops == 5 * 2 * 4 * 20 * 30

    def test_explicit_bwd(self):
        spec = LayerSpec("x", 10, fwd_flops=4.0, bwd_flops=6.0)
        assert spec.bwd_flops == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("x", -1, fwd_flops=0)
        with pytest.raises(ValueError):
            LayerSpec("x", 1, fwd_flops=-1)


class TestZooSpecs:
    @pytest.mark.parametrize("name", list(TABLE2_MODELS))
    def test_params_match_paper_within_3pct(self, name):
        spec = all_specs()[name]
        paper_params, _ = TABLE2_MODELS[name]
        assert spec.total_params / 1e6 == pytest.approx(paper_params, rel=0.03)

    @pytest.mark.parametrize("name", list(TABLE2_MODELS))
    def test_flops_match_paper_within_10pct(self, name):
        spec = all_specs()[name]
        _, paper_gflops = TABLE2_MODELS[name]
        assert spec.fwd_flops_per_sample / 1e9 == pytest.approx(paper_gflops, rel=0.10)

    def test_vgg16_exact_params(self):
        # The canonical 138.36M figure.
        assert vgg16_spec().total_params == 138_357_544

    def test_layer_names_unique(self):
        for spec in all_specs().values():
            names = [layer.name for layer in spec.layers]
            assert len(names) == len(set(names)), spec.name

    def test_iterations_per_epoch(self):
        spec = vgg16_spec()
        assert spec.iterations_per_epoch(128) == spec.samples_per_epoch // (32 * 128)
        assert spec.iterations_per_epoch(10**9) == 1  # floor at 1

    def test_bert_large_has_many_small_tensors(self):
        # The paper calls BERT-LARGE "a problem with many small tensors".
        spec = all_specs()["BERT-LARGE"]
        small = [l for l in spec.layers if 0 < l.params < 10_000]
        assert len(small) > 100

    def test_describe(self):
        assert "VGG16" in vgg16_spec().describe()


class TestTrainableProxies:
    def test_vgg_forward_shape(self, rng):
        model = VGGProxy(rng=rng)
        out = model(rng.standard_normal((2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_bert_forward_shape(self, rng):
        model = BERTProxy(rng=rng)
        out = model(rng.integers(0, 64, size=(2, 10)))
        assert out.shape == (2, 4)

    def test_bert_sizes_ordered(self, rng):
        base = bert_base_proxy(rng=np.random.default_rng(0))
        large = bert_large_proxy(rng=np.random.default_rng(0))
        assert large.num_parameters() > base.num_parameters()

    def test_transformer_proxy(self, rng):
        model = TransformerProxy(rng=rng)
        out = model(rng.integers(0, 64, size=(3, 12)))
        assert out.shape == (3, 4)

    def test_multimodal_forward(self, rng):
        model = LSTMAlexNetProxy(rng=rng)
        images = rng.standard_normal((2, 3, 12, 12))
        tokens = rng.integers(0, 32, size=(2, 8))
        out = model((images, tokens))
        assert out.shape == (2, 6)

    def test_proxies_deterministic_per_seed(self):
        a = VGGProxy(rng=np.random.default_rng(3))
        b = VGGProxy(rng=np.random.default_rng(3))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_all_params_reachable_by_backward(self, rng):
        model = LSTMAlexNetProxy(rng=rng)
        images = rng.standard_normal((2, 3, 12, 12))
        tokens = rng.integers(0, 32, size=(2, 8))
        model((images, tokens)).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name
