"""The BAGUA engine: replicas, profiling iteration, DP-SG equivalence."""

import warnings

import numpy as np
import pytest

from repro.algorithms import AllreduceSGD
from repro.cluster import ClusterSpec, make_workers
from repro.core import Algorithm, BaguaConfig, BaguaEngine
from repro.tensor import Linear, ReLU, SGD, Sequential, Tensor
from repro.tensor import functional as F


def make_model(seed=0):
    return Sequential(
        Linear(6, 10, rng=np.random.default_rng(seed)),
        ReLU(),
        Linear(10, 3, rng=np.random.default_rng(seed + 1)),
    )


def loss_fn(model, batch):
    inputs, labels = batch
    return F.cross_entropy(model(Tensor(inputs)), labels)


def make_engine(world=4, algorithm=None, config=None, lr=0.1):
    spec = ClusterSpec(num_nodes=2, workers_per_node=world // 2)
    workers = make_workers(spec)
    models = [make_model() for _ in range(world)]
    optimizers = [SGD(m.parameters(), lr=lr) for m in models]
    return BaguaEngine(
        models, optimizers, algorithm or AllreduceSGD(), workers, config=config
    )


def make_batches(rng, world, batch=4):
    return [
        (rng.standard_normal((batch, 6)), rng.integers(0, 3, size=batch))
        for _ in range(world)
    ]


class TestConstruction:
    def test_mismatched_lengths_rejected(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        workers = make_workers(spec)
        models = [make_model(), make_model()]
        optimizers = [SGD(models[0].parameters(), lr=0.1)]
        with pytest.raises(ValueError):
            BaguaEngine(models, optimizers, AllreduceSGD(), workers)

    def test_divergent_replicas_rejected(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        workers = make_workers(spec)
        models = [make_model(seed=0), make_model(seed=5)]
        optimizers = [SGD(m.parameters(), lr=0.1) for m in models]
        with pytest.raises(ValueError):
            BaguaEngine(models, optimizers, AllreduceSGD(), workers)

    def test_batch_count_checked(self, rng):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.step(make_batches(rng, 2), loss_fn)


class TestProfilingIteration:
    def test_first_step_builds_buckets(self, rng):
        engine = make_engine()
        assert engine.plan is None
        engine.step(make_batches(rng, 4), loss_fn)
        assert engine.plan is not None
        assert engine.num_buckets >= 1
        for worker in engine.workers:
            assert worker.buckets

    def test_buckets_aligned_across_workers(self, rng):
        engine = make_engine()
        engine.step(make_batches(rng, 4), loss_fn)
        sizes = [[b.total_elements for b in w.buckets] for w in engine.workers]
        assert all(s == sizes[0] for s in sizes)

    def test_flatten_config_respected(self, rng):
        engine = make_engine(config=BaguaConfig(flatten=False))
        engine.step(make_batches(rng, 4), loss_fn)
        # Per-tensor buckets: one per parameter.
        assert engine.num_buckets == 4

    def test_setup_called_once(self, rng):
        calls = []

        class Probe(Algorithm):
            name = "probe"

            def setup(self, engine):
                calls.append("setup")

            def on_backward_done(self, engine, step):
                calls.append(f"step{step}")

        engine = make_engine(algorithm=Probe())
        batches = make_batches(rng, 4)
        with pytest.warns(DeprecationWarning):  # legacy-hook Probe
            engine.step(batches, loss_fn)
        engine.step(batches, loss_fn)
        assert calls == ["setup", "step0", "step1"]


class TestDPSGEquivalence:
    def test_replicas_stay_identical_under_allreduce(self, rng):
        engine = make_engine()
        for _ in range(3):
            engine.step(make_batches(rng, 4), loss_fn)
        reference = engine.workers[0].model.state_dict()
        for worker in engine.workers[1:]:
            for name, value in worker.model.state_dict().items():
                np.testing.assert_allclose(value, reference[name], atol=1e-12)

    def test_n_workers_equal_big_batch_single_sgd(self, rng):
        """The defining DP-SG invariant: averaging gradients over n workers
        with per-worker batch b equals one SGD step on the union batch."""
        world, batch, lr = 4, 4, 0.1
        batches = make_batches(rng, world, batch)

        engine = make_engine(world=world, lr=lr)
        engine.step(batches, loss_fn)

        single = make_model()
        opt = SGD(single.parameters(), lr=lr)
        union_x = np.concatenate([b[0] for b in batches])
        union_y = np.concatenate([b[1] for b in batches])
        loss = F.cross_entropy(single(Tensor(union_x)), union_y)
        loss.backward()
        opt.step()

        distributed = engine.workers[0].model.state_dict()
        for name, value in single.state_dict().items():
            np.testing.assert_allclose(distributed[name], value, atol=1e-10)

    def test_loss_decreases(self, rng):
        engine = make_engine()
        batches = make_batches(rng, 4, batch=8)
        first = engine.step(batches, loss_fn)
        for _ in range(15):
            last = engine.step(batches, loss_fn)
        assert last < first


class TestBucketAccessors:
    def test_grads_and_weights_roundtrip(self, rng):
        engine = make_engine()
        engine.step(make_batches(rng, 4), loss_fn)
        new = [np.full(b.total_elements, 7.0) for b in engine.workers[0].buckets]
        for k in range(engine.num_buckets):
            engine.set_weights_of_bucket(k, [new[k]] * 4)
        for k in range(engine.num_buckets):
            for w in engine.weights_of_bucket(k):
                np.testing.assert_array_equal(w, new[k])


class TestLegacyHookDeprecation:
    """The on_backward_done() shim is deprecated for algorithms that override it."""

    class _Legacy(Algorithm):
        name = "legacy-probe"

        def on_backward_done(self, engine, step):
            for k in range(engine.num_buckets):
                grads = engine.grads_of_bucket(k)
                mean = sum(grads) / len(grads)
                engine.set_grads_of_bucket(k, [mean] * engine.world_size)
            for worker in engine.workers:
                worker.optimizer.step()

    def test_legacy_override_warns_once(self, rng):
        engine = make_engine(world=2, algorithm=self._Legacy())
        batches = make_batches(rng, 2)
        with pytest.warns(DeprecationWarning, match="on_backward_done"):
            engine.step(batches, loss_fn)
        # Only the first step warns; later steps are quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.step(batches, loss_fn)

    def test_ported_algorithm_on_legacy_path_is_silent(self, rng):
        # scheduled=False drives a ported algorithm through the base-class
        # shim (the equivalence tests do this); that must not warn.
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        workers = make_workers(spec)
        models = [make_model() for _ in range(2)]
        optimizers = [SGD(m.parameters(), lr=0.1) for m in models]
        engine = BaguaEngine(
            models, optimizers, AllreduceSGD(), workers, scheduled=False
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.step(make_batches(rng, 2), loss_fn)

    def test_scheduled_algorithm_never_warns(self, rng):
        engine = make_engine(world=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.step(make_batches(rng, 2), loss_fn)
