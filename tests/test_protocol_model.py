"""Protocol model checker: exhaustive exploration, POR, mutations.

Covers the :mod:`repro.analysis.protocol` model/explorer half of ISSUE 8:

* the clean model explores clean at several world sizes (no false
  positives), and world 4 completes comfortably inside the 30 s budget
  under DPOR;
* one negative fixture per protocol rule, planspace-style: a single seeded
  bug must yield **exactly one** located root-cause finding with a
  printable interleaving witness;
* partial-order reduction is validated against the unreduced search: same
  verdict, same rule, (far) fewer states;
* randomized legal interleavings — a Hypothesis-driven scheduler over the
  clean model — never trip an invariant and always quiesce cleanly.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.protocol import (
    MUTATIONS,
    Explorer,
    Faults,
    Workload,
    build_model,
    explore,
    run_mutation,
    run_mutations,
)
from repro.analysis.protocol.model import ALL_RULES, RULE_CONFORMANCE


def the_one_finding(findings):
    assert len(findings) == 1, [f.render() for f in findings]
    (finding,) = findings
    assert finding.location(), finding.render()
    assert finding.witness, finding.render()
    return finding


# ----------------------------------------------------------------------
# Clean model: exhaustive exploration finds nothing.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("world", [1, 2, 3])
def test_clean_model_explores_clean(world):
    result = explore(Workload(world=world))
    assert result.ok, result.describe()
    assert result.finding is None
    assert not result.truncated
    assert result.states > 0


def test_world4_round_protocol_explores_under_30s():
    begin = time.perf_counter()
    result = explore(Workload(world=4))
    elapsed = time.perf_counter() - begin
    assert result.ok, result.describe()
    assert elapsed < 30.0, f"world-4 exploration took {elapsed:.1f}s"


def test_oversize_record_falls_back_inline_cleanly():
    # A record larger than the ring travels inline over the pipe — the
    # protocol handles it; only *forgetting* the fallback (force_place)
    # is a bug.
    result = explore(Workload(oversize=True))
    assert result.ok, result.describe()


@pytest.mark.parametrize("world", [1, 2, 3])
def test_clean_batched_model_explores_clean(world):
    # The PR 9 flag-word steady state: whole-iteration programs staged into
    # the ring, one doorbell flag per batch, one ack flag per batch.
    result = explore(Workload(world=world, batched=True))
    assert result.ok, result.describe()
    assert result.finding is None


def test_clean_batched_model_with_per_round_batches():
    result = explore(Workload(batched=True, batch_rounds=1))
    assert result.ok, result.describe()


def test_exploration_result_to_dict_roundtrips():
    result = explore(Workload(world=2))
    data = result.to_dict()
    assert data["ok"] is True
    assert data["world"] == 2
    assert data["finding"] is None
    assert data["states"] == result.states


# ----------------------------------------------------------------------
# Negative fixtures: one seeded bug, exactly one root-cause finding.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mutation", MUTATIONS, ids=[m.name for m in MUTATIONS])
def test_each_seeded_bug_yields_exactly_its_root_cause(mutation):
    outcome = run_mutation(mutation)
    finding = the_one_finding(outcome.result.findings())
    assert finding.rule == mutation.expected_rule, finding.render()
    assert finding.severity == "error"
    assert outcome.ok, outcome.describe()


def test_every_model_rule_has_a_negative_fixture():
    # Every protocol rule the model can raise is exercised by some mutation
    # (conformance is the sanitizer's divergence rule — live streams only).
    covered = {m.expected_rule for m in MUTATIONS}
    model_rules = set(ALL_RULES) - {RULE_CONFORMANCE}
    assert covered == model_rules, sorted(model_rules - covered)


def test_mutation_report_is_green_and_renders():
    report = run_mutations()
    assert report.ok, report.render()
    text = report.render()
    assert f"{len(MUTATIONS)}/{len(MUTATIONS)}" in text
    data = report.to_dict()
    assert data["ok"] is True
    assert len(data["mutations"]) == len(MUTATIONS)


def test_witness_is_a_printable_interleaving_trace():
    outcome = run_mutation(MUTATIONS[0])  # dropped-ack -> deadlock
    finding = the_one_finding(outcome.result.findings())
    trace = finding.explain()
    assert "step" in trace
    assert any("worker" in line or "parent" in line for line in finding.witness)


# ----------------------------------------------------------------------
# Partial-order reduction: same verdicts, fewer states.
# ----------------------------------------------------------------------
_POR_SCENARIOS = [
    ("clean-w2", Workload(), Faults()),
    ("clean-w3", Workload(world=3), Faults()),
    ("dropped-ack", Workload(), Faults(drop_ack=((0, 0),))),
    ("stale-seq", Workload(), Faults(stale_seq=((0, 1),))),
    ("leak", Workload(), Faults(skip_unlink=(0,))),
    ("clean-batched", Workload(batched=True), Faults()),
    ("ack-early-batched", Workload(batched=True), Faults(ack_early=(0,))),
    (
        "stale-flag-batched",
        Workload(batched=True, batch_rounds=1, pool=False, task=False),
        Faults(stale_flag=((0, 1),)),
    ),
    ("clean-reduce-pipe", Workload(world=2, reduce=True), Faults()),
    ("clean-reduce-batched", Workload(world=2, batched=True, reduce=True), Faults()),
    (
        "unmapped-poolref-batched",
        Workload(world=2, batched=True, reduce=True),
        Faults(poolref_unmapped=((0, 1),)),
    ),
    (
        "skip-reduce-write-batched",
        Workload(world=2, batched=True, reduce=True),
        Faults(skip_reduce_write=(0,)),
    ),
]


@pytest.mark.parametrize(
    "workload,faults", [(w, f) for _, w, f in _POR_SCENARIOS],
    ids=[name for name, _, _ in _POR_SCENARIOS],
)
def test_por_agrees_with_full_search(workload, faults):
    reduced = Explorer(por=True).explore(workload, faults)
    full = Explorer(por=False).explore(workload, faults)
    assert reduced.ok == full.ok
    reduced_rule = reduced.finding.rule if reduced.finding else None
    full_rule = full.finding.rule if full.finding else None
    assert reduced_rule == full_rule
    assert reduced.states <= full.states


def test_por_actually_reduces_the_clean_state_space():
    reduced = Explorer(por=True).explore(Workload(world=3))
    full = Explorer(por=False).explore(Workload(world=3))
    assert reduced.states < full.states / 2, (reduced.states, full.states)


# ----------------------------------------------------------------------
# Randomized legal interleavings stay clean (Hypothesis scheduler).
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data(), world=st.integers(min_value=1, max_value=3), batched=st.booleans())
def test_random_legal_interleavings_are_clean(data, world, batched):
    state = build_model(Workload(world=world, batched=batched), Faults())
    steps = 0
    while True:
        procs = state.enabled_procs()
        if not procs:
            break
        proc = data.draw(st.sampled_from(sorted(procs)), label="scheduled proc")
        _, finding = state.step(proc)
        assert finding is None, finding.render()
        steps += 1
        assert steps < 10_000, "model failed to quiesce"
    assert state.quiescence_finding() is None
    assert steps > 0


def test_truncation_is_reported_not_silent():
    result = Explorer(max_states=5).explore(Workload(world=2))
    assert result.truncated
    assert not result.ok
