"""Checkpointing: save/load of models and optimizer state."""

import numpy as np
import pytest

from repro.tensor import Adam, Linear, ReLU, SGD, Sequential, Tensor, load_checkpoint, save_checkpoint
from repro.tensor import functional as F


def make_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 6, rng=rng), ReLU(), Linear(6, 2, rng=rng))


def take_steps(net, opt, steps, rng):
    for _ in range(steps):
        x = Tensor(rng.standard_normal((3, 4)))
        net.zero_grad()
        F.cross_entropy(net(x), np.array([0, 1, 1])).backward()
        opt.step()


class TestModelRoundTrip:
    def test_parameters_restored(self, tmp_path, rng):
        net = make_net()
        take_steps(net, SGD(net.parameters(), lr=0.1), 3, rng)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net, step=3)

        fresh = make_net(seed=42)
        step = load_checkpoint(path, fresh)
        assert step == 3
        for (_, a), (_, b) in zip(net.named_parameters(), fresh.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_no_optimizer_in_checkpoint_raises(self, tmp_path):
        net = make_net()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net)
        with pytest.raises(ValueError):
            load_checkpoint(path, make_net(), SGD(make_net().parameters(), lr=0.1))


class TestOptimizerRoundTrip:
    def test_sgd_momentum_resumes_exactly(self, tmp_path, rng):
        net = make_net()
        opt = SGD(net.parameters(), lr=0.1, momentum=0.9)
        take_steps(net, opt, 3, np.random.default_rng(1))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, net, opt, step=3)

        resumed_net = make_net(seed=42)
        resumed_opt = SGD(resumed_net.parameters(), lr=0.1, momentum=0.9)
        load_checkpoint(path, resumed_net, resumed_opt)

        # Continuing both runs with identical data must agree bit-for-bit.
        continue_rng_a = np.random.default_rng(2)
        continue_rng_b = np.random.default_rng(2)
        take_steps(net, opt, 2, continue_rng_a)
        take_steps(resumed_net, resumed_opt, 2, continue_rng_b)
        for (_, a), (_, b) in zip(net.named_parameters(), resumed_net.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_adam_state_resumes_exactly(self, tmp_path):
        net = make_net()
        opt = Adam(net.parameters(), lr=0.01)
        take_steps(net, opt, 4, np.random.default_rng(1))
        path = tmp_path / "adam.npz"
        save_checkpoint(path, net, opt, step=4)

        resumed_net = make_net(seed=9)
        resumed_opt = Adam(resumed_net.parameters(), lr=0.01)
        load_checkpoint(path, resumed_net, resumed_opt)
        assert resumed_opt.t == opt.t
        take_steps(net, opt, 1, np.random.default_rng(5))
        take_steps(resumed_net, resumed_opt, 1, np.random.default_rng(5))
        for (_, a), (_, b) in zip(net.named_parameters(), resumed_net.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_frozen_variance_flag_survives(self, tmp_path):
        net = make_net()
        opt = Adam(net.parameters(), lr=0.01)
        take_steps(net, opt, 1, np.random.default_rng(0))
        opt.freeze_variance()
        path = tmp_path / "frozen.npz"
        save_checkpoint(path, net, opt)
        resumed_opt = Adam(make_net().parameters(), lr=0.01)
        load_checkpoint(path, make_net(), resumed_opt)
        assert resumed_opt.variance_frozen
