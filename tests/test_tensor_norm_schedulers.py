"""BatchNorm2d and learning-rate schedulers."""

import numpy as np
import pytest

from repro.tensor import (
    BatchNorm2d,
    CosineAnnealingLR,
    SGD,
    StepLR,
    Tensor,
    WarmupLR,
)
from repro.tensor.schedulers import lr_trace


def make_sgd(lr=1.0):
    p = Tensor(np.zeros(2), requires_grad=True)
    return SGD([p], lr=lr)


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) * 5 + 2)
        out = bn(x)
        means = out.data.mean(axis=(0, 2, 3))
        stds = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(means, np.zeros(3), atol=1e-10)
        np.testing.assert_allclose(stds, np.ones(3), atol=1e-2)

    def test_running_stats_updated_in_training_only(self, rng):
        bn = BatchNorm2d(3, momentum=0.5)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) + 10)
        bn(x)
        assert bn.running_mean.mean() > 1.0
        frozen = bn.running_mean.copy()
        bn.eval()
        bn(x)
        np.testing.assert_array_equal(bn.running_mean, frozen)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)
        x = Tensor(rng.standard_normal((16, 2, 3, 3)) * 3 + 1)
        bn(x)  # running stats <- batch stats
        bn.eval()
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(2), atol=0.05)

    def test_gradients_numeric(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)), requires_grad=True)

        def loss():
            bn.running_mean[...] = 0
            bn.running_var[...] = 1
            return (bn(x) ** 2).sum()

        loss().backward()
        auto = x.grad[1, 0, 2, 1]
        eps = 1e-6
        x.data[1, 0, 2, 1] += eps
        hi = loss().item()
        x.data[1, 0, 2, 1] -= 2 * eps
        lo = loss().item()
        x.data[1, 0, 2, 1] += eps
        assert abs(auto - (hi - lo) / (2 * eps)) < 1e-4

    def test_weight_bias_grads(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        (bn(x) ** 2).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_buffers_not_parameters(self):
        bn = BatchNorm2d(4)
        names = [n for n, _ in bn.named_parameters()]
        assert names == ["weight", "bias"]


class TestStepLR:
    def test_decays_at_boundaries(self):
        sched = StepLR(make_sgd(1.0), step_size=2, gamma=0.1)
        assert lr_trace(sched, 5) == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(make_sgd(), step_size=0)


class TestCosine:
    def test_endpoints(self):
        sched = CosineAnnealingLR(make_sgd(1.0), total_steps=10, min_lr=0.1)
        trace = lr_trace(sched, 10)
        assert trace[0] < 1.0
        assert trace[-1] == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_sgd(1.0), total_steps=20)
        trace = lr_trace(sched, 20)
        assert all(a >= b for a, b in zip(trace, trace[1:]))

    def test_clamped_after_total(self):
        sched = CosineAnnealingLR(make_sgd(1.0), total_steps=5, min_lr=0.2)
        trace = lr_trace(sched, 8)
        assert trace[-1] == pytest.approx(0.2)


class TestWarmup:
    def test_linear_ramp(self):
        sched = WarmupLR(make_sgd(1.0), warmup_steps=4)
        assert lr_trace(sched, 4) == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_holds_after_warmup(self):
        sched = WarmupLR(make_sgd(1.0), warmup_steps=2)
        assert lr_trace(sched, 4)[-1] == pytest.approx(1.0)

    def test_chains_into_inner_schedule(self):
        opt = make_sgd(1.0)
        inner = StepLR(opt, step_size=1, gamma=0.5)
        sched = WarmupLR(opt, warmup_steps=2, after=inner)
        trace = lr_trace(sched, 5)
        assert trace[:2] == pytest.approx([0.5, 1.0])
        # After warmup, StepLR halves per step: 0.5, 0.25, 0.125.
        assert trace[2:] == pytest.approx([0.5, 0.25, 0.125])

    def test_applies_to_optimizer(self):
        opt = make_sgd(1.0)
        WarmupLR(opt, warmup_steps=4).step()
        assert opt.lr == pytest.approx(0.25)

    def test_rejects_unschedulable_optimizer(self):
        class NoLR:
            pass

        with pytest.raises(TypeError):
            WarmupLR(NoLR(), warmup_steps=2)
