"""Convolution and pooling: shapes and numeric gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F


def central_difference(build, param: Tensor, index, eps=1e-6):
    param.data[index] += eps
    hi = build().item()
    param.data[index] -= 2 * eps
    lo = build().item()
    param.data[index] += eps
    return (hi - lo) / (2 * eps)


@pytest.fixture
def x(rng) -> Tensor:
    return Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True)


@pytest.fixture
def w(rng) -> Tensor:
    return Tensor(rng.standard_normal((4, 3, 3, 3)) * 0.3, requires_grad=True)


class TestConv2d:
    def test_output_shape_no_padding(self, x, w):
        assert F.conv2d(x, w).shape == (2, 4, 6, 6)

    def test_output_shape_padding(self, x, w):
        assert F.conv2d(x, w, padding=1).shape == (2, 4, 8, 8)

    def test_output_shape_stride(self, x, w):
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)

    def test_matches_direct_convolution(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)))
        w = Tensor(rng.standard_normal((1, 1, 3, 3)))
        out = F.conv2d(x, w).data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(x.data[0, 0, i : i + 3, j : j + 3] * w.data[0, 0])
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_weight_grad(self, x, w):
        def build():
            return (F.conv2d(x, w, padding=1) ** 2).sum()

        x.zero_grad(); w.zero_grad()
        build().backward()
        numeric = central_difference(build, w, (2, 1, 0, 2))
        assert abs(w.grad[2, 1, 0, 2] - numeric) < 1e-4

    def test_input_grad(self, x, w):
        def build():
            return (F.conv2d(x, w, stride=2, padding=1) ** 2).sum()

        x.zero_grad(); w.zero_grad()
        build().backward()
        numeric = central_difference(build, x, (1, 2, 3, 4))
        assert abs(x.grad[1, 2, 3, 4] - numeric) < 1e-4

    def test_bias_grad(self, x, w, rng):
        b = Tensor(rng.standard_normal(4), requires_grad=True)

        def build():
            return F.conv2d(x, w, b).sum()

        build().backward()
        # d(sum)/d(bias_c) = number of output positions x batch.
        np.testing.assert_allclose(b.grad, np.full(4, 2 * 6 * 6), atol=1e-9)


class TestPooling:
    def test_max_pool_shape_and_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        grad = x.grad[0, 0]
        assert grad[1, 1] == 1 and grad[0, 0] == 0
        assert grad.sum() == 4

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad_uniform(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_max_pool_stride(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6, 6)), requires_grad=True)
        out = F.max_pool2d(x, 2, stride=1)
        assert out.shape == (1, 2, 5, 5)
        out.sum().backward()
        assert x.grad.shape == x.data.shape
