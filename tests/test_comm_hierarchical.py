"""Hierarchical communication: correctness and inter-node traffic savings."""

import numpy as np
import pytest

from repro.comm import HierarchicalComm, ring_allreduce, scatter_reduce
from repro.compression import QSGDCompressor

from .conftest import make_group


@pytest.fixture
def arrays(rng, group):
    return [rng.standard_normal(64) for _ in range(group.size)]


class TestHierarchicalAllreduce:
    def test_equals_sum(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        for out in HierarchicalComm(group).allreduce(arrays):
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_results_in_group_order(self, group, rng):
        # Make each member's array encode its own index.
        arrays = [np.full(4, float(i)) for i in range(group.size)]
        outs = HierarchicalComm(group).allreduce(arrays)
        expected = np.full(4, sum(range(group.size)))
        for out in outs:
            np.testing.assert_allclose(out, expected)

    def test_fewer_inter_node_bytes_than_flat(self, rng):
        arrays = [rng.standard_normal(4096) for _ in range(8)]
        flat = make_group(2, 4)
        scatter_reduce(arrays, flat)
        hier = make_group(2, 4)
        HierarchicalComm(hier).allreduce(arrays)
        assert (
            hier.transport.stats.inter_node_bytes
            < flat.transport.stats.inter_node_bytes / 3
        )

    def test_compression_only_on_inter_tier(self, group, arrays):
        codec = QSGDCompressor(bits=8)
        calls = []

        def compress(chunk, member, chunk_id):
            calls.append(len(chunk))
            return codec.compress(chunk)

        HierarchicalComm(group).allreduce(
            arrays,
            compress_phase1=compress,
            decompress_phase1=codec.decompress,
            compress_phase2=compress,
            decompress_phase2=codec.decompress,
        )
        # Only leaders compress: phase 1 = 2 leaders x 2 chunks; phase 2 =
        # one merged partition per leader.
        assert len(calls) == 6

    def test_single_node_cluster(self, rng):
        group = make_group(1, 4)
        arrays = [rng.standard_normal(10) for _ in range(4)]
        expected = np.sum(arrays, axis=0)
        for out in HierarchicalComm(group).allreduce(arrays):
            np.testing.assert_allclose(out, expected, atol=1e-10)


class TestHierarchicalDecentralized:
    def test_intra_node_fully_synchronized(self, group, rng):
        arrays = [rng.standard_normal(16) for _ in range(group.size)]

        def exchange(leader_arrays, leader_group):
            # Identity exchange: leaders keep their node means.
            return [a.copy() for a in leader_arrays]

        outs = HierarchicalComm(group).decentralized_average(arrays, exchange)
        # All workers of node 0 hold the same tensor (node mean).
        for out in outs[1:4]:
            np.testing.assert_allclose(out, outs[0], atol=1e-10)
        node0_mean = np.mean(arrays[:4], axis=0)
        np.testing.assert_allclose(outs[0], node0_mean, atol=1e-10)

    def test_leader_exchange_applied(self, group, rng):
        arrays = [rng.standard_normal(8) for _ in range(group.size)]

        def exchange(leader_arrays, leader_group):
            summed = ring_allreduce(leader_arrays, leader_group)
            return [s / leader_group.size for s in summed]

        outs = HierarchicalComm(group).decentralized_average(arrays, exchange)
        global_mean = np.mean(arrays, axis=0)
        for out in outs:
            np.testing.assert_allclose(out, global_mean, atol=1e-10)
