"""Property tests: the scheduled executor is a drop-in for the legacy path.

The :class:`~repro.core.schedule.ScheduledExecutor` drives per-bucket
communication through the transport's virtual clocks in gradient-ready
order.  These Hypothesis tests pin the two contracts that make it safe to
ship as the default execution mode:

* **bit-identical numerics** — for any O/F/H configuration, the final
  weights after a few steps match the legacy ``on_backward_done`` shim path
  bit for bit, for both an exact algorithm (allreduce) and a stochastic
  compressed one (QSGD, whose RNG draw order must survive the refactor);
* **overlap is observable** — on a communication-bound cluster with more
  than one bucket, ``overlap=True`` yields strictly lower transport time
  than ``overlap=False``, because comms launch at per-bucket grad-ready
  gates instead of the backward-end barrier.

The lowered schedule of every engine built here must also pass the full
static checker suite — the same gate ``python -m repro analyze`` enforces.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import AllreduceSGD, QSGD
from repro.analysis import HB_CHECKERS, build_hb, lower_schedule, run_checkers
from repro.cluster import ClusterSpec, Link, Transport
from repro.cluster.worker import make_workers
from repro.core import BaguaConfig
from repro.core.engine import BaguaEngine
from repro.core.schedule import ComputeModel
from repro.tensor import functional as F
from repro.tensor.layers import Linear
from repro.tensor.module import Module
from repro.tensor.optim import SGD
from repro.tensor.tensor import Tensor

#: Small bucket cap so the tiny test model still splits into >= 2 buckets —
#: overlap gates only differ from the backward-end barrier with multiple
#: buckets.
BUCKET_BYTES = 256.0

#: A link slow enough that communication dominates compute: overlap savings
#: must show up in the transport clocks, not vanish into noise.
SLOW_LINK = Link(latency_s=1e-3, bandwidth_Bps=1e8, ramp_bytes=0, name="slow-tcp")


class _MLP(Module):
    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc1 = Linear(8, 12, rng=rng)
        self.fc2 = Linear(12, 4, rng=rng)

    def forward(self, x):
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.fc2(F.relu(self.fc1(x)))


def _loss(model: Module, batch) -> object:
    inputs, labels = batch
    return F.cross_entropy(model(inputs), labels)


def _batches(world_size: int, steps: int, seed: int):
    rng = np.random.default_rng(np.random.SeedSequence([seed, 11]))
    return [
        [(rng.normal(size=(4, 8)), rng.integers(0, 4, size=4)) for _ in range(world_size)]
        for _ in range(steps)
    ]


def _run(algorithm, config, seed, scheduled=None, inter_node=None, steps=3):
    """Train the probe model for a few steps; return engine + final weights."""
    kwargs = {"inter_node": inter_node} if inter_node is not None else {}
    spec = ClusterSpec(num_nodes=2, workers_per_node=2, **kwargs)
    transport = Transport(spec)
    workers = make_workers(spec, transport, seed=seed)
    models = [_MLP(np.random.default_rng(seed)) for _ in workers]
    optimizers = [SGD(m.parameters(), lr=0.05, momentum=0.9) for m in models]
    engine = BaguaEngine(
        models, optimizers, algorithm, workers, config=config, scheduled=scheduled,
        compute_model=ComputeModel(bwd_seconds_per_element=1e-5,
                                   fwd_seconds_per_element=5e-6),
    )
    for batches in _batches(spec.world_size, steps, seed):
        engine.step(batches, _loss)
    weights = [
        {name: value.copy() for name, value in w.model.state_dict().items()}
        for w in engine.workers
    ]
    return engine, weights


def _assert_same_weights(a, b):
    assert len(a) == len(b)
    for wa, wb in zip(a, b):
        assert wa.keys() == wb.keys()
        for name in wa:
            assert np.array_equal(wa[name], wb[name]), name


configs = st.builds(
    BaguaConfig,
    overlap=st.booleans(),
    flatten=st.booleans(),
    hierarchical=st.booleans(),
    bucket_bytes=st.just(BUCKET_BYTES),
)


@given(config=configs, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_scheduled_allreduce_bit_identical_to_legacy(config, seed):
    engine, scheduled = _run(AllreduceSGD(), config, seed)  # auto: executor
    assert engine.executor is not None
    _, legacy = _run(AllreduceSGD(), config, seed, scheduled=False)
    _assert_same_weights(scheduled, legacy)


@given(config=configs, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_scheduled_qsgd_bit_identical_to_legacy(config, seed):
    engine, scheduled = _run(QSGD(), config, seed)
    assert engine.executor is not None
    _, legacy = _run(QSGD(), config, seed, scheduled=False)
    _assert_same_weights(scheduled, legacy)


@given(config=configs, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_lowered_schedule_passes_checkers(config, seed):
    engine, _ = _run(AllreduceSGD(), config, seed)
    assert engine.schedule is not None
    subject = lower_schedule(engine.schedule, engine.world_size)
    assert run_checkers(subject) == []


@given(seed=st.integers(0, 2**31 - 1), flatten=st.booleans())
@settings(max_examples=10, deadline=None)
def test_overlap_strictly_lowers_comm_bound_iteration_time(seed, flatten):
    times = {}
    for overlap in (True, False):
        config = BaguaConfig(
            overlap=overlap, flatten=flatten, bucket_bytes=BUCKET_BYTES,
        )
        engine, _ = _run(AllreduceSGD(), config, seed, inter_node=SLOW_LINK)
        assert engine.num_buckets >= 2  # otherwise the gates coincide
        times[overlap] = engine.group.transport.max_time()
    assert times[True] < times[False]


# ----------------------------------------------------------------------
# Happens-before: any generated schedule lowers to an HB-clean stream, and
# the HB partial order is consistent with the executor's virtual clocks.
# ----------------------------------------------------------------------

#: Node groups of the 2x2 test cluster, so hierarchical schedules lower to
#: their real three-phase (reduce / inter-node / broadcast) streams.
NODE_GROUPS = [[0, 1], [2, 3]]


@given(config=configs, seed=st.integers(0, 2**31 - 1), per_bucket=st.booleans())
@settings(max_examples=10, deadline=None)
def test_any_schedule_lowers_hb_clean(config, seed, per_bucket):
    engine, _ = _run(AllreduceSGD(), config, seed)
    assert engine.schedule is not None
    variant = dataclasses.replace(engine.schedule, per_bucket_updates=per_bucket)
    subject = lower_schedule(variant, engine.world_size, nodes=NODE_GROUPS)
    assert run_checkers(subject, HB_CHECKERS) == []
    assert not build_hb(subject).deadlocks


@given(config=configs, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_hb_order_consistent_with_virtual_clocks(config, seed):
    """HB => time-ordered against the executor's clocks.

    Every lowered event that happens-before a communication must carry an
    earlier virtual-clock reading than that communication: issues are
    stamped with their gradient-ready time (``IterationReport.ready_times``)
    and collectives with the clock right after the bucket's exchange
    (``comm_times``).  Only pairs whose *target* is a collective are
    compared — the no-overlap lowering conservatively serializes issue
    markers between comms on one thread, while the executor prices the
    whole backward pass up front, so clock readings taken *at* an issue
    only order against later communication, not vice versa.  Same-bucket
    collective pairs are skipped too: the report stamps one clock per
    (rank, bucket), so a hierarchical bucket's reduce/broadcast phases all
    share a reading whose per-rank skew is below that resolution.
    """
    engine, _ = _run(AllreduceSGD(), config, seed)
    report = engine.executor.last_report
    assert report is not None
    subject = lower_schedule(engine.schedule, engine.world_size, nodes=NODE_GROUPS)
    graph = build_hb(subject)
    assert not graph.deadlocks

    index_of = {b.name: b.index for b in engine.schedule.buckets}

    def clock_reading(event):
        op = event.op
        if op.bucket not in index_of:
            return None
        key = (op.rank, index_of[op.bucket])
        if op.kind == "issue":
            return report.ready_times.get(key)
        if op.scope == "collective":
            return report.comm_times.get(key)
        return None

    timed = [
        (event, reading)
        for event in graph.events
        if (reading := clock_reading(event)) is not None
    ]
    assert timed  # the mapping found real events to compare
    for target, t_target in timed:
        if target.op.scope != "collective":
            continue
        for source, t_source in timed:
            if source is target:
                continue
            if source.op.scope == "collective" and source.op.bucket == target.op.bucket:
                continue
            if graph.happens_before(source, target):
                assert t_source <= t_target + 1e-9, (
                    source.describe(), target.describe()
                )
