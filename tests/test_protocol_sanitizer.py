"""Cross-process conformance sanitizer: live streams, divergences, teardown.

The runtime half of ISSUE 8: with sanitize mode on, every backend emits a
:class:`ProtocolEvent` stream from each participating OS process (workers
piggyback theirs on the acks), and
:func:`repro.analysis.protocol.sanitizer.check_events` replays the stream
against the protocol model with vector clocks extended across processes.

* clean live runs — shm, local, batched, and a sanitized end-to-end
  trainer on the multiprocess backend — replay with zero findings;
* doctored streams (one per sanitizer rule, planspace convention) each
  yield exactly one located root-cause finding;
* every legal relinearization of a real stream — a Hypothesis-driven
  merge respecting program order and the pipe delivery edges — stays
  clean (the clocks, not the accidental buffer order, carry the proof);
* ``SharedMemoryBackend.__del__`` stays silent when the interpreter is
  shutting down (construct-and-drop leaves no stderr noise).
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import AllreduceSGD
from repro.analysis.protocol import check_events
from repro.analysis.protocol.model import (
    RULE_BARRIER,
    RULE_BUDGET,
    RULE_CONFORMANCE,
    RULE_DELIVERY,
    RULE_LIFECYCLE,
    RULE_LOST_WAKEUP,
    RULE_ORPHAN,
    RULE_SEQ,
)
from repro.cluster import ClusterSpec, make_workers
from repro.cluster.backends import SharedMemoryBackend
from repro.cluster.backends.base import BackendError, ProtocolEvent
from repro.cluster.backends.local import BatchedBackend, LocalBackend
from repro.cluster.transport import Message
from repro.core import BaguaConfig, BaguaEngine
from repro.tensor import SGD, Linear, ReLU, Sequential, Tensor
from repro.tensor import functional as F


def _task(pool, x):
    """Module-level so shm workers can pickle it by reference."""
    return x * 2


def _loss_fn(model, batch):
    inputs, labels = batch
    return F.cross_entropy(model(Tensor(inputs)), labels)


def _drive(backend) -> list[ProtocolEvent]:
    """One of everything: pool, two rounds, tasks, graceful close."""
    backend.allocate_pool(0, 8)
    for round_index in range(2):
        messages = [
            Message(
                src=src,
                dst=(src + 1) % 2,
                payload=np.arange(4, dtype=np.float64) + src,
                nbytes=32,
                match_id=f"r{round_index}s{src}",
            )
            for src in range(2)
        ]
        backend.route_round(messages)
    backend.run_rank_tasks(_task, {0: (5,), 1: (7,)})
    backend.close()
    return backend.protocol_events


@pytest.fixture(scope="module")
def shm_stream() -> list[ProtocolEvent]:
    # Pinned to the legacy per-round pipe protocol: the doctored streams
    # below edit per-round post/ack shapes that batching coalesces away.
    return _drive(
        SharedMemoryBackend(
            world_size=2, ring_bytes=1 << 16, sanitize=True, batch_rounds=False
        )
    )


@pytest.fixture(scope="module")
def shm_batched_stream() -> list[ProtocolEvent]:
    return _drive(SharedMemoryBackend(world_size=2, ring_bytes=1 << 16, sanitize=True))


def the_one_finding(findings):
    assert len(findings) == 1, [f.render() for f in findings]
    (finding,) = findings
    assert finding.location(), finding.render()
    return finding


# ----------------------------------------------------------------------
# Clean live runs replay clean.
# ----------------------------------------------------------------------
class TestLiveConformance:
    def test_sanitized_shm_stream_is_clean(self, shm_stream):
        assert shm_stream, "sanitize mode recorded no events"
        assert check_events(shm_stream) == []

    def test_stream_has_both_sides_of_the_pipes(self, shm_stream):
        procs = {event.proc for event in shm_stream}
        assert procs == {"parent", "worker:0", "worker:1"}

    @pytest.mark.parametrize("backend_cls", [LocalBackend, BatchedBackend])
    def test_sanitized_in_process_backends_are_clean(self, backend_cls):
        backend = backend_cls()
        backend.set_protocol_sanitize(True)
        events = _drive(backend)
        assert events
        assert check_events(events) == []

    def test_sanitize_defaults_off_and_records_nothing(self):
        backend = LocalBackend()
        assert not backend.sanitizing
        _drive(backend)
        assert backend.protocol_events == []

    def test_env_var_opts_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROTOCOL_SANITIZE", "1")
        assert LocalBackend().sanitizing
        monkeypatch.setenv("REPRO_PROTOCOL_SANITIZE", "0")
        assert not LocalBackend().sanitizing

    def test_shm_sanitize_flag_fixed_after_start(self):
        with SharedMemoryBackend(world_size=1, ring_bytes=1 << 14) as backend:
            backend.ensure_started()
            with pytest.raises(BackendError):
                backend.set_protocol_sanitize(True)

    def test_sanitized_end_to_end_trainer_run_is_clean(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        workers = make_workers(spec, backend="shm")
        rng = np.random.default_rng(0)
        models = [
            Sequential(
                Linear(6, 8, rng=np.random.default_rng(1)),
                ReLU(),
                Linear(8, 3, rng=np.random.default_rng(2)),
            )
            for _ in range(2)
        ]
        optimizers = [SGD(m.parameters(), lr=0.05) for m in models]
        config = BaguaConfig(backend="shm", protocol_sanitize=True)
        engine = BaguaEngine(models, optimizers, AllreduceSGD(), workers, config=config)
        backend = workers[0].transport.backend
        assert backend.sanitizing

        for _ in range(2):
            batches = [
                (rng.standard_normal((4, 6)), rng.integers(0, 3, size=4))
                for _ in range(2)
            ]
            engine.step(batches, _loss_fn)
        backend.close()
        assert backend.protocol_events, "trainer run recorded no protocol events"
        findings = backend.conformance_findings()
        assert findings == [], [f.render() for f in findings]


# ----------------------------------------------------------------------
# Doctored streams: one divergence, one located root-cause finding.
# ----------------------------------------------------------------------
def _drop_round_ack(stream):
    return [
        e for e in stream
        if not (e.kind == "ack_send" and e.proc == "worker:1" and e.op == "round")
    ]


def _lose_close_doorbell(stream):
    # The worker never wakes for its close: none of its close-serving
    # events (recv / exit / ack_send) ever happen, so the parent also has
    # nothing to join and nothing to unlink for that rank.
    close_seq = next(
        e.seq for e in stream if e.kind == "post" and e.op == "close" and e.rank == 1
    )
    return [
        e for e in stream
        if not (e.proc == "worker:1" and (e.seq == close_seq or e.kind == "exit"))
        and not (e.kind == "ack_recv" and e.rank == 1 and e.seq == close_seq)
        and not (e.kind == "unlink" and e.rank == 1)
    ]


def _skip_barrier(stream):
    first = next(
        e for e in stream if e.kind == "ack_recv" and e.rank == 1 and e.seq == 0
    )
    return [e for e in stream if e is not first]


def _reuse_seq(stream):
    second = next(
        e for e in stream if e.kind == "post" and e.rank == 1 and e.seq == 1
    )
    return [replace(e, seq=0) if e is second else e for e in stream]


def _misdeliver(stream):
    victim = next(
        e for e in stream if e.kind == "recv" and e.proc == "worker:1" and e.op == "round"
    )
    return [replace(e, rank=0) if e is victim else e for e in stream]


def _unlink_early(stream):
    unlink = next(e for e in stream if e.kind == "unlink" and e.rank == 1)
    rest = [e for e in stream if e is not unlink]
    cut = next(i for i, e in enumerate(rest) if e.kind == "post" and e.op == "close")
    return rest[:cut] + [unlink] + rest[cut:]


def _abandon_worker(stream):
    # No close exchange, no exit, no unlink for rank 0: the worker is
    # simply forgotten.
    close_seq = next(
        e.seq for e in stream if e.kind == "post" and e.op == "close" and e.rank == 0
    )
    return [
        e for e in stream
        if not (e.rank == 0 and e.seq == close_seq)
        and not (e.proc == "worker:0" and e.kind == "exit")
        and not (e.kind == "unlink" and e.rank == 0)
    ]


def _overflow_budget(stream):
    victim = next(e for e in stream if e.kind == "post" and e.op == "round" and e.rank == 1)
    return [replace(e, detail=(1, 1 << 20, 0)) if e is victim else e for e in stream]


def _phantom_doorbell(stream):
    victim = next(
        e for e in stream if e.kind == "post" and e.op == "round" and e.rank == 1
    )
    return [e for e in stream if e is not victim]


_DOCTORS = [
    ("dropped-ack", _drop_round_ack, RULE_LOST_WAKEUP),
    ("lost-doorbell", _lose_close_doorbell, RULE_LOST_WAKEUP),
    ("skipped-barrier", _skip_barrier, RULE_BARRIER),
    ("reused-seq", _reuse_seq, RULE_SEQ),
    ("wrong-rank-delivery", _misdeliver, RULE_DELIVERY),
    ("early-unlink", _unlink_early, RULE_LIFECYCLE),
    ("orphaned-worker", _abandon_worker, RULE_ORPHAN),
    ("budget-overflow", _overflow_budget, RULE_BUDGET),
    ("phantom-doorbell", _phantom_doorbell, RULE_CONFORMANCE),
]


class TestDoctoredStreams:
    @pytest.mark.parametrize(
        "doctor,expected_rule",
        [(d, r) for _, d, r in _DOCTORS],
        ids=[name for name, _, _ in _DOCTORS],
    )
    def test_each_divergence_yields_its_root_cause(self, shm_stream, doctor, expected_rule):
        findings = check_events(doctor(list(shm_stream)))
        finding = the_one_finding(findings)
        assert finding.rule == expected_rule, finding.render()
        assert finding.severity == "error"

    def test_witnesses_cite_observed_events(self, shm_stream):
        findings = check_events(_reuse_seq(list(shm_stream)))
        finding = the_one_finding(findings)
        assert any("observed:" in line for line in finding.witness), finding.explain()


# ----------------------------------------------------------------------
# Batched flag-word streams: clean replay + doctored divergences.
# ----------------------------------------------------------------------
class TestBatchedStreams:
    def test_sanitized_batched_stream_is_clean(self, shm_batched_stream):
        assert shm_batched_stream, "sanitize mode recorded no events"
        assert check_events(shm_batched_stream) == []

    def test_batched_stream_stages_then_flushes(self, shm_batched_stream):
        stages = [e for e in shm_batched_stream if e.kind == "stage"]
        batch_posts = [
            e for e in shm_batched_stream if e.kind == "post" and e.op == "batch"
        ]
        assert stages, "batched run recorded no stage events"
        assert batch_posts, "batched run recorded no batch doorbells"
        covered = {(e.rank, e.seq) for e in batch_posts}
        assert {(e.rank, e.seq) for e in stages} <= covered

    def test_dropped_batch_post_is_a_barrier_bug(self, shm_batched_stream):
        victim = next(
            e for e in shm_batched_stream
            if e.kind == "post" and e.op == "batch" and e.rank == 1
        )
        doctored = [e for e in shm_batched_stream if e is not victim]
        finding = the_one_finding(check_events(doctored))
        assert finding.rule == RULE_BARRIER, finding.render()
        assert "never flushed" in finding.message

    def test_dropped_batch_ack_is_a_lost_wakeup(self, shm_batched_stream):
        victim = next(
            e for e in shm_batched_stream
            if e.kind == "ack_send" and e.op == "batch" and e.proc == "worker:1"
        )
        doctored = [e for e in shm_batched_stream if e is not victim]
        finding = the_one_finding(check_events(doctored))
        assert finding.rule == RULE_LOST_WAKEUP, finding.render()


# ----------------------------------------------------------------------
# Every legal relinearization replays clean (the clocks carry the proof).
# ----------------------------------------------------------------------
def _legal_merges(stream, data):
    """Randomly merge per-proc sequences, respecting pipe delivery edges."""
    queues: dict[str, list[ProtocolEvent]] = {}
    for event in stream:
        queues.setdefault(event.proc, []).append(event)
    posted: set[tuple] = set()
    acked: set[tuple] = set()
    merged: list[ProtocolEvent] = []

    def enabled(proc: str) -> bool:
        event = queues[proc][0]
        if event.kind == "recv":
            return ("post", event.rank, event.seq) in posted
        if event.kind == "ack_recv":
            return ("ack_send", event.rank, event.seq) in acked
        return True

    while any(queues.values()):
        ready = sorted(p for p, q in queues.items() if q and enabled(p))
        assert ready, "no enabled process: the source stream violated HB"
        proc = data.draw(st.sampled_from(ready), label="next proc")
        event = queues[proc].pop(0)
        if event.kind == "post":
            posted.add(("post", event.rank, event.seq))
        elif event.kind == "ack_send":
            acked.add(("ack_send", event.rank, event.seq))
        merged.append(event)
    return merged


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_legal_relinearizations_replay_clean(data):
    backend = LocalBackend()
    backend.set_protocol_sanitize(True)
    stream = _drive(backend)
    merged = _legal_merges(stream, data)
    assert len(merged) == len(stream)
    assert check_events(merged) == []


# ----------------------------------------------------------------------
# __del__ at interpreter shutdown stays silent.
# ----------------------------------------------------------------------
class TestShutdownHardening:
    @pytest.mark.parametrize("start", [False, True], ids=["unstarted", "started"])
    def test_construct_and_drop_at_exit_is_silent(self, start):
        script = (
            "from repro.cluster.backends.shm import SharedMemoryBackend\n"
            f"backend = SharedMemoryBackend(world_size=2, ring_bytes=1 << 14)\n"
            + ("backend.ensure_started()\n" if start else "")
            + "# dropped without close(): atexit + __del__ must stay silent\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.strip() == "", proc.stderr
        assert proc.stdout.strip() == "", proc.stdout

    def test_del_is_noop_while_finalizing(self):
        backend = SharedMemoryBackend(world_size=1, ring_bytes=1 << 14)
        closed = []
        backend.close = lambda: closed.append(True)  # type: ignore[method-assign]
        real = sys.is_finalizing
        sys.is_finalizing = lambda: True  # type: ignore[assignment]
        try:
            backend.__del__()
        finally:
            sys.is_finalizing = real
        assert closed == []
        backend.__del__()
        assert closed == [True]
