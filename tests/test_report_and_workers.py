"""Report renderers and worker-context plumbing."""

import numpy as np

from repro.cluster import ClusterSpec, Transport, make_workers
from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xx", True]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", "+"}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_bool_rendering(self):
        text = render_table(["x"], [[True], [False]])
        assert "yes" in text and "-" in text

    def test_float_format(self):
        text = render_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in text
        assert "1.23" not in text


class TestRenderSeries:
    def test_columns_per_series(self):
        text = render_series("t", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        header = text.splitlines()[0]
        assert "t" in header and "a" in header and "b" in header
        assert "0.300" in text

    def test_title(self):
        text = render_series("t", [1], {"a": [1.0]}, title="Fig")
        assert text.startswith("Fig")


class TestWorkerContext:
    def test_make_workers_shares_transport(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=2)
        workers = make_workers(spec)
        assert len(workers) == 4
        assert all(w.transport is workers[0].transport for w in workers)

    def test_context_properties(self):
        spec = ClusterSpec(num_nodes=2, workers_per_node=2)
        workers = make_workers(spec)
        w = workers[3]
        assert w.rank == 3
        assert w.node == 1
        assert w.local_rank == 1
        assert w.world_size == 4
        assert w.now == 0.0

    def test_rng_streams_decorrelated_but_deterministic(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        a = make_workers(spec, seed=5)
        b = make_workers(spec, Transport(spec), seed=5)
        # Same seed, same rank -> same stream.
        np.testing.assert_array_equal(
            a[0].rng.standard_normal(4), b[0].rng.standard_normal(4)
        )
        # Different ranks -> different streams.
        assert not np.array_equal(
            a[0].rng.standard_normal(4), a[1].rng.standard_normal(4)
        )

    def test_now_tracks_transport(self):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        workers = make_workers(spec)
        workers[0].transport.compute(0, 1.5)
        assert workers[0].now == 1.5
        assert workers[1].now == 0.0
