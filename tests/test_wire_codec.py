"""Pickle-free wire codec: round-trip fidelity and size accounting.

The PR 9 shm fast path ships round payloads through
:mod:`repro.cluster.backends.wire` — a small self-describing binary format
for the nested tuples/lists of ndarrays and scalars real rounds carry —
so compressed tensors blit as packed bytes instead of passing through
pickle.  This suite pins the codec's contract:

* a Hypothesis-generated space of nested payload shapes (mixed dtypes,
  empty arrays, 0-d scalars, deep nesting) round-trips bit-exactly;
* every shipped compressor's payload takes the ``_CODEC`` path in the shm
  record encoder (no pickle fallback for the hot formats);
* the transport's ``payload_nbytes`` accounting is identical whether a
  payload travelled via the codec or via pickle;
* unsupported values refuse cleanly (``WireError``) and the shm encoder
  falls back to pickle for them.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.backends import shm, wire
from repro.cluster.transport import payload_nbytes
from repro.compression import (
    OneBitCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)
from repro.compression.base import CompressedPayload


def assert_same(a, b):
    """Structural bit-exact equality over the codec's value space."""
    assert type(a) is type(b), (type(a), type(b))
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        np.testing.assert_array_equal(a, b)
    elif isinstance(a, np.generic):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
    elif isinstance(a, (tuple, list)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_same(x, y)
    elif isinstance(a, dict):
        assert a.keys() == b.keys()
        for k in a:
            assert_same(a[k], b[k])
    elif isinstance(a, CompressedPayload):
        assert a.codec == b.codec and a.n == b.n and a.wire_bytes == b.wire_bytes
        assert_same(a.fields, b.fields)
    else:
        assert a == b


# ----------------------------------------------------------------------
# Hypothesis: nested payload shapes round-trip bit-exactly.
# ----------------------------------------------------------------------
_DTYPES = [np.float64, np.float32, np.float16, np.uint8, np.int8,
           np.int16, np.int32, np.int64, np.uint16, np.uint32, np.uint64, np.bool_]


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
    # 0-d scalars, empty arrays and small nd shapes are all fair game.
    shape = tuple(draw(st.lists(st.integers(0, 4), min_size=0, max_size=3)))
    n = int(np.prod(shape)) if shape else 1
    raw = draw(st.binary(min_size=n * dtype.itemsize, max_size=n * dtype.itemsize))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def scalars():
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=8),
        st.binary(max_size=8),
    )


def payloads():
    return st.recursive(
        st.one_of(scalars(), arrays()),
        lambda children: st.one_of(
            st.lists(children, max_size=3).map(tuple),
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=4), children, max_size=3),
        ),
        max_leaves=8,
    )


@settings(max_examples=200, deadline=None)
@given(payload=payloads())
def test_roundtrip_is_bit_exact(payload):
    assert wire.encodable(payload)
    assert_same(wire.decode(wire.encode(payload)), payload)


@settings(max_examples=100, deadline=None)
@given(payload=payloads())
def test_payload_nbytes_matches_pickle_path(payload):
    # The transport charges payload objects, not their encodings: the codec
    # must not shift a single accounted byte relative to the pickle path.
    via_codec = payload_nbytes(wire.decode(wire.encode(payload)))
    via_pickle = payload_nbytes(pickle.loads(pickle.dumps(payload)))
    assert via_codec == via_pickle


def test_decode_returns_owned_arrays():
    arr = np.arange(16, dtype=np.float64)
    out = wire.decode(wire.encode(arr))
    assert out.flags.owndata or out.base is None or out.base.flags.owndata
    out[0] = -1.0  # writable, not a view into the wire buffer


# ----------------------------------------------------------------------
# Compressed payloads take the codec path (the PR 9 criterion).
# ----------------------------------------------------------------------
_COMPRESSORS = [
    ("qsgd8", lambda: QSGDCompressor(bits=8, rng=np.random.default_rng(7))),
    ("onebit", OneBitCompressor),
    ("terngrad", lambda: TernGradCompressor(rng=np.random.default_rng(7))),
    ("topk1pct", lambda: TopKCompressor(ratio=0.01)),
    ("signsgd", SignSGDCompressor),
]


class TestCompressedPayloads:
    @pytest.mark.parametrize("name,make", _COMPRESSORS, ids=[n for n, _ in _COMPRESSORS])
    def test_every_compressor_payload_skips_pickle(self, name, make):
        grad = np.random.default_rng(3).standard_normal(4096)
        payload = make().compress(grad)
        kind, _data = shm._encode(payload)
        assert kind == shm._CODEC, f"{name} payload fell back to kind {kind}"

    @pytest.mark.parametrize("name,make", _COMPRESSORS, ids=[n for n, _ in _COMPRESSORS])
    def test_compressed_roundtrip_decompresses_identically(self, name, make):
        grad = np.random.default_rng(4).standard_normal(1024)
        codec = make()
        payload = codec.compress(grad)
        shipped = wire.decode(wire.encode(payload))
        assert_same(shipped, payload)
        np.testing.assert_array_equal(codec.decompress(shipped), codec.decompress(payload))
        assert payload_nbytes(shipped) == payload_nbytes(payload)

    def test_round_chunk_tuples_take_the_codec_path(self):
        # Collectives tag chunks as (chunk_id, array): the common round shape.
        kind, _ = shm._encode((3, np.arange(8, dtype=np.float32)))
        assert kind == shm._CODEC


# ----------------------------------------------------------------------
# PoolRef descriptors (the PR 10 zero-copy round payload).
# ----------------------------------------------------------------------
class TestPoolRefDescriptors:
    def test_roundtrip_is_25_bytes(self):
        from repro.cluster.backends import PoolRef

        ref = PoolRef(rank=3, offset=4096, length=512)
        blob = wire.encode(ref)
        # The whole point of the descriptor: 1 tag byte + three i64 fields,
        # regardless of how large the referenced pool region is.
        assert len(blob) == 25
        out = wire.decode(blob)
        assert isinstance(out, PoolRef)
        assert out == ref

    @settings(max_examples=50, deadline=None)
    @given(
        rank=st.integers(0, 2**16),
        offset=st.integers(0, 2**40).map(lambda v: v & ~7),
        length=st.integers(1, 2**32),
    )
    def test_roundtrip_hypothesis(self, rank, offset, length):
        from repro.cluster.backends import PoolRef

        ref = PoolRef(rank=rank, offset=offset, length=length)
        assert wire.encodable(ref)
        assert wire.decode(wire.encode(ref)) == ref

    def test_nested_in_round_shapes(self):
        # Descriptors may ride inside the usual tuple/list round payloads.
        from repro.cluster.backends import PoolRef

        payload = (7, [PoolRef(rank=1, offset=0, length=64), np.float64(2.5)])
        out = wire.decode(wire.encode(payload))
        assert out[1][0] == PoolRef(rank=1, offset=0, length=64)
        assert_same(out, payload)

    def test_truncated_descriptor_is_rejected(self):
        from repro.cluster.backends import PoolRef

        blob = wire.encode(PoolRef(rank=0, offset=8, length=8))
        with pytest.raises((wire.WireError, struct.error)):
            wire.decode(blob[:-1])


# ----------------------------------------------------------------------
# Refusals and fallbacks.
# ----------------------------------------------------------------------
class _Opaque:
    pass


class TestRefusals:
    @pytest.mark.parametrize(
        "value",
        [
            _Opaque(),
            {1, 2, 3},  # sets are not a round payload shape
            np.arange(6).reshape(2, 3).T,  # non-C-contiguous
            1 << 70,  # out of int64 range
        ],
        ids=["object", "set", "fortran-array", "bigint"],
    )
    def test_unsupported_values_raise_wire_error(self, value):
        assert not wire.encodable(value)
        with pytest.raises(wire.WireError):
            wire.encode(value)

    def test_shm_encoder_falls_back_to_pickle(self):
        kind, data = shm._encode(_Opaque())
        assert kind == shm._PICKLED
        assert isinstance(pickle.loads(data.tobytes()), _Opaque)

    def test_flat_f64_still_goes_raw(self):
        # The zero-copy RAW path outranks the codec for plain f64 vectors.
        kind, _ = shm._encode(np.arange(4, dtype=np.float64))
        assert kind == shm._RAW_F64

    def test_trailing_garbage_is_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode(wire.encode(1.0) + b"\x00")
