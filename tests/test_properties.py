"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays as np_arrays

from repro.cluster import ClusterSpec, Transport
from repro.comm import CommGroup, ring_allreduce, scatter_reduce
from repro.comm.collectives import _chunk_bounds
from repro.compression import (
    ErrorFeedback,
    FP16Compressor,
    OneBitCompressor,
    QSGDCompressor,
    TopKCompressor,
)
from repro.core import RandomPeers, TensorBucket, d_fp_s
from repro.tensor import Tensor
from repro.tensor.tensor import _unbroadcast

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


def float_vectors(min_size=1, max_size=64):
    return np_arrays(
        dtype=np.float64,
        shape=st.integers(min_size, max_size),
        elements=finite_floats,
    )


class TestChunkBoundsProperties:
    @given(length=st.integers(0, 500), parts=st.integers(1, 32))
    def test_partition_is_exact_and_ordered(self, length, parts):
        bounds = _chunk_bounds(length, parts)
        assert len(bounds) == parts
        assert bounds[0][0] == 0
        assert bounds[-1][1] == length
        for (lo1, hi1), (lo2, _hi2) in zip(bounds, bounds[1:]):
            assert hi1 == lo2
            assert lo1 <= hi1

    @given(length=st.integers(1, 500), parts=st.integers(1, 32))
    def test_chunk_sizes_balanced(self, length, parts):
        sizes = [hi - lo for lo, hi in _chunk_bounds(length, parts)]
        assert max(sizes) - min(sizes) <= 1


class TestUnbroadcastProperties:
    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
        batch=st.integers(1, 4),
    )
    def test_sum_preserved(self, rows, cols, batch):
        grad = np.random.default_rng(0).standard_normal((batch, rows, cols))
        out = _unbroadcast(grad, (rows, cols))
        assert out.shape == (rows, cols)
        np.testing.assert_allclose(out, grad.sum(axis=0))


class TestCompressorProperties:
    @given(
        x=np_arrays(
            dtype=np.float64,
            shape=st.integers(1, 64),
            # Stay inside the representable fp16 range; overflow is clipped
            # by the codec (tested separately below).
            elements=st.floats(-6e4, 6e4, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=30)
    def test_fp16_shape_and_bounded_error(self, x):
        codec = FP16Compressor()
        out = codec.decompress(codec.compress(x))
        assert out.shape == x.shape
        scale = np.abs(x).max() + 1.0
        assert np.abs(out - x).max() <= 0.01 * scale

    def test_fp16_clips_instead_of_overflowing(self):
        codec = FP16Compressor()
        out = codec.decompress(codec.compress(np.array([1e9, -1e9])))
        assert np.all(np.isfinite(out))
        assert out[0] > 6e4 and out[1] < -6e4

    @given(x=float_vectors())
    @settings(max_examples=30)
    def test_onebit_wire_size_invariant(self, x):
        codec = OneBitCompressor()
        payload = codec.compress(x)
        assert payload.wire_bytes == codec.wire_bytes(x.size)
        assert payload.wire_bytes < x.size * 4 + 16

    @given(x=float_vectors(min_size=2))
    @settings(max_examples=30)
    def test_qsgd_decompressed_within_norm(self, x):
        codec = QSGDCompressor(bits=8, rng=np.random.default_rng(0))
        out = codec.decompress(codec.compress(x))
        norm = np.linalg.norm(x)
        assert np.abs(out).max() <= norm * (1 + 1e-9)

    @given(x=float_vectors(min_size=4), ratio=st.sampled_from([0.1, 0.25, 0.5]))
    @settings(max_examples=30)
    def test_topk_preserves_kept_and_zeroes_rest(self, x, ratio):
        codec = TopKCompressor(ratio=ratio)
        out = codec.decompress(codec.compress(x))
        kept = np.nonzero(out)[0]
        np.testing.assert_array_equal(out[kept], x[kept])
        assert len(kept) <= max(1, int(round(x.size * ratio)))

    @given(x=float_vectors())
    @settings(max_examples=30)
    def test_error_feedback_identity(self, x):
        """x + residual_before == decompressed + residual_after, always."""
        ef = ErrorFeedback(OneBitCompressor())
        before = ef.residual("k", x.size).copy()
        payload = ef.compress(x, key="k")
        after = ef.residual("k", x.size)
        np.testing.assert_allclose(
            x + before, ef.decompress(payload) + after, atol=1e-9, rtol=1e-9
        )


class TestCollectiveProperties:
    @given(
        data=st.integers(0, 2**31 - 1),
        size=st.integers(1, 40),
        nodes=st.integers(1, 3),
        workers=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_ring_allreduce_equals_sum(self, data, size, nodes, workers):
        rng = np.random.default_rng(data)
        spec = ClusterSpec(num_nodes=nodes, workers_per_node=workers)
        group = CommGroup(Transport(spec), list(range(spec.world_size)))
        arrays = [rng.standard_normal(size) for _ in range(group.size)]
        expected = np.sum(arrays, axis=0)
        for out in ring_allreduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-9)

    @given(
        data=st.integers(0, 2**31 - 1),
        size=st.integers(1, 40),
        nodes=st.integers(1, 3),
        workers=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_scatter_reduce_equals_sum(self, data, size, nodes, workers):
        rng = np.random.default_rng(data)
        spec = ClusterSpec(num_nodes=nodes, workers_per_node=workers)
        group = CommGroup(Transport(spec), list(range(spec.world_size)))
        arrays = [rng.standard_normal(size) for _ in range(group.size)]
        expected = np.sum(arrays, axis=0)
        for out in scatter_reduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-9)

    @given(data=st.integers(0, 2**31 - 1), step=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_gossip_preserves_global_mean(self, data, step):
        rng = np.random.default_rng(data)
        spec = ClusterSpec(num_nodes=2, workers_per_node=2)
        group = CommGroup(Transport(spec), list(range(4)))
        arrays = [rng.standard_normal(8) for _ in range(4)]
        outs = d_fp_s(arrays, group, peers=RandomPeers(seed=1), step=step)
        np.testing.assert_allclose(
            np.mean(outs, axis=0), np.mean(arrays, axis=0), atol=1e-9
        )


class TestBucketProperties:
    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 6), st.integers(1, 6)), min_size=1, max_size=6
        )
    )
    @settings(max_examples=30)
    def test_flatten_roundtrip(self, shapes):
        rng = np.random.default_rng(0)
        params = [Tensor(rng.standard_normal(s), requires_grad=True) for s in shapes]
        originals = [p.data.copy() for p in params]
        bucket = TensorBucket(params, flatten=True)
        # Values preserved by flattening.
        for p, orig in zip(params, originals):
            np.testing.assert_array_equal(p.data, orig)
        # Flat view is consistent with concatenation.
        np.testing.assert_array_equal(
            bucket.flat_data(), np.concatenate([o.reshape(-1) for o in originals])
        )

    @given(
        sizes=st.lists(st.integers(1, 200), min_size=1, max_size=20),
        cap_tensors=st.integers(1, 8),
    )
    @settings(max_examples=30)
    def test_partition_covers_each_param_once(self, sizes, cap_tensors):
        from repro.core import partition_into_buckets

        rng = np.random.default_rng(0)
        params = [Tensor(rng.standard_normal(s), requires_grad=True) for s in sizes]
        buckets = partition_into_buckets(params, bucket_bytes=cap_tensors * 200 * 4)
        seen = [p for b in buckets for p in b.params]
        assert len(seen) == len(params)
        assert [id(p) for p in seen] == [id(p) for p in params]


class TestTransportProperties:
    @given(
        payload_bytes=st.lists(st.integers(1, 10_000), min_size=1, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_bytes_conserved(self, payload_bytes):
        from repro.cluster import Message

        spec = ClusterSpec(num_nodes=2, workers_per_node=2)
        transport = Transport(spec)
        messages = [
            Message(i % 3, (i % 3) + 1, None, nbytes=b)
            for i, b in enumerate(payload_bytes)
        ]
        transport.exchange(messages)
        assert transport.stats.total_bytes == sum(payload_bytes)
        assert transport.stats.messages == len(payload_bytes)

    @given(seconds=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_clocks_monotone_under_compute(self, seconds):
        spec = ClusterSpec(num_nodes=1, workers_per_node=2)
        transport = Transport(spec)
        last = 0.0
        for s in seconds:
            transport.compute(0, s)
            assert transport.now(0) >= last
            last = transport.now(0)
