"""Module system: registration, traversal, state dicts, layers."""

import numpy as np
import pytest

from repro.tensor import (
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Tensor,
)
from repro.tensor import functional as F


class TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=rng)
        self.fc2 = Linear(8, 2, rng=rng)

    def forward(self, x):
        return self.fc2(F.relu(self.fc1(x)))


class TestRegistration:
    def test_named_parameters_order_follows_registration(self, rng):
        net = TwoLayer(rng)
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_parameters_require_grad(self, rng):
        assert all(p.requires_grad for p in TwoLayer(rng).parameters())

    def test_num_parameters(self, rng):
        assert TwoLayer(rng).num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modules_iterates_tree(self, rng):
        mods = list(TwoLayer(rng).modules())
        assert len(mods) == 3  # self + 2 Linear

    def test_setattr_before_init_raises(self):
        class Broken(Module):
            def __init__(self):
                self.layer = Linear(2, 2)  # no super().__init__()

        with pytest.raises(RuntimeError):
            Broken()


class TestStateDict:
    def test_roundtrip(self, rng):
        a = TwoLayer(rng)
        b = TwoLayer(np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_copies(self, rng):
        net = TwoLayer(rng)
        state = net.state_dict()
        state["fc1.weight"][...] = 0
        assert net.fc1.weight.data.sum() != 0

    def test_load_missing_key_raises(self, rng):
        net = TwoLayer(rng)
        state = net.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_shape_mismatch_raises(self, rng):
        net = TwoLayer(rng)
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestTrainEvalZeroGrad:
    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears(self, rng):
        net = TwoLayer(rng)
        x = Tensor(rng.standard_normal((3, 4)))
        net(x).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        net = Sequential(Linear(4, 4, rng=rng), ReLU())
        x = Tensor(rng.standard_normal((2, 4)))
        out = net(x)
        assert (out.data >= 0).all()

    def test_sequential_append_and_len(self, rng):
        net = Sequential(Linear(2, 2, rng=rng))
        net.append(ReLU())
        assert len(net) == 2
        assert len(list(iter(net))) == 2

    def test_module_list_indexing(self, rng):
        layers = ModuleList([Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(layers) == 3
        assert isinstance(layers[1], Linear)
        # parameters from list members are registered
        assert len(list(layers.named_parameters())) == 6


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(Tensor(rng.standard_normal((5, 4)))).shape == (5, 7)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_conv_module(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=rng)
        assert layer(Tensor(rng.standard_normal((2, 3, 5, 5)))).shape == (2, 8, 5, 5)

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.standard_normal((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_maxpool_module(self, rng):
        out = MaxPool2d(2)(Tensor(rng.standard_normal((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_layernorm_module(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.standard_normal((3, 6))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0, atol=1e-10)

    def test_embedding_module(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_identical_seed_identical_params(self):
        a = Linear(3, 3, rng=np.random.default_rng(7))
        b = Linear(3, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
