"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, TCP_25G, Transport
from repro.comm import CommGroup


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """2 nodes x 4 workers — the standard functional-mode test cluster."""
    return ClusterSpec(num_nodes=2, workers_per_node=4, inter_node=TCP_25G)


@pytest.fixture
def transport(small_cluster: ClusterSpec) -> Transport:
    return Transport(small_cluster)


@pytest.fixture
def group(transport: Transport) -> CommGroup:
    return CommGroup(transport, list(range(transport.spec.world_size)))


def make_group(num_nodes: int = 2, workers_per_node: int = 4) -> CommGroup:
    spec = ClusterSpec(num_nodes=num_nodes, workers_per_node=workers_per_node)
    return CommGroup(Transport(spec), list(range(spec.world_size)))
