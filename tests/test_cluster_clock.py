"""Virtual clocks and the discrete-event queue."""

import pytest

from repro.cluster import EventQueue, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_negative_raises(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_is_monotone(self):
        clock = VirtualClock(5.0)
        clock.advance_to(3.0)  # no-op backwards
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_reset(self):
        clock = VirtualClock(5.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(2.0, lambda: seen.append("b"))
        q.schedule(1.0, lambda: seen.append("a"))
        q.schedule(3.0, lambda: seen.append("c"))
        q.run()
        assert seen == ["a", "b", "c"]
        assert q.now == 3.0

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: seen.append(1))
        q.schedule(1.0, lambda: seen.append(2))
        q.run()
        assert seen == [1, 2]

    def test_schedule_in_past_raises(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        q = EventQueue()
        times = []
        q.schedule(1.0, lambda: q.schedule_after(2.0, lambda: times.append(q.now)))
        q.run()
        assert times == [3.0]

    def test_events_can_spawn_events(self):
        q = EventQueue()
        count = [0]

        def recur():
            count[0] += 1
            if count[0] < 5:
                q.schedule_after(1.0, recur)

        q.schedule(0.0, recur)
        q.run()
        assert count[0] == 5
        assert q.processed == 5

    def test_event_budget_guards_loops(self):
        q = EventQueue()

        def forever():
            q.schedule_after(0.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)

    def test_step_returns_none_when_empty(self):
        assert EventQueue().step() is None

    def test_step_returns_label(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None, label="x")
        assert q.step() == (1.0, "x")
