"""Symbolic plan lowering: oracle identity vs engine-built schedules.

The tentpole claim of :mod:`repro.analysis.symbolic` is that lowering a plan
*description* yields IR event-identical to lowering the schedule a really
constructed engine commits to — for every registered algorithm and baseline,
across all sixteen O/F/H x update-mode variants, at world sizes {2, 4, 8,
16} — while being far cheaper than executing anything (the speed test pins
the >= 50x bound the pruner's economics rest on).
"""

import dataclasses
import gc
import time

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHM_REGISTRY, make_algorithm
from repro.analysis import run_checkers
from repro.analysis.checkers import HB_CHECKERS
from repro.analysis.driver import (
    ANALYSIS_OVERRIDES,
    PROBE_BUCKET_BYTES,
    _probe_batches,
    _probe_loss,
    _ProbeMLP,
)
from repro.analysis.lowering import lower_schedule
from repro.analysis.recorder import TraceRecorder
from repro.analysis.symbolic import (
    PROBE_READY_INVENTORY,
    PlanPoint,
    lower_point,
    probe_profile,
    sweep_variants,
    symbolic_schedule,
)
from repro.baselines import BASELINE_REGISTRY
from repro.cluster.topology import ClusterSpec
from repro.cluster.transport import Transport
from repro.cluster.worker import make_workers
from repro.core.engine import BaguaEngine
from repro.core.optimizer_framework import BaguaConfig
from repro.tensor.optim import SGD

ALL_NAMES = sorted(ALGORITHM_REGISTRY) + sorted(BASELINE_REGISTRY)
#: (num_nodes, workers_per_node) -> worlds {2, 4, 8, 16}.
WORLD_SHAPES = ((1, 2), (2, 2), (2, 4), (4, 4))

#: (name, num_nodes, workers_per_node) -> (engine, seconds to build + step).
_ENGINE_CACHE: dict = {}


def built_engine(name, num_nodes, workers_per_node):
    """Check-by-execution: construct an engine and record a dry run.

    This is the driver's canonical executed path (5 recorded steps with a
    :class:`TraceRecorder` installed) — what verifying one plan costs when
    the IR has to come off a real run.  Cached per (name, shape); the
    recorded wall time feeds the speed test.
    """
    key = (name, num_nodes, workers_per_node)
    if key not in _ENGINE_CACHE:
        if name in ALGORITHM_REGISTRY:
            algorithm = make_algorithm(name, **ANALYSIS_OVERRIDES.get(name, {}))
        else:
            algorithm = BASELINE_REGISTRY[name]()
        begin = time.perf_counter()
        spec = ClusterSpec(num_nodes=num_nodes, workers_per_node=workers_per_node)
        transport = Transport(spec)
        workers = make_workers(spec, transport, seed=0)
        models = [_ProbeMLP(np.random.default_rng(0)) for _ in workers]
        optimizers = [SGD(m.parameters(), lr=0.05, momentum=0.9) for m in models]
        engine = BaguaEngine(
            models, optimizers, algorithm, workers,
            config=BaguaConfig(bucket_bytes=PROBE_BUCKET_BYTES),
        )
        recorder = TraceRecorder(spec.world_size).install(transport)
        try:
            for step, batches in enumerate(_probe_batches(spec.world_size, 5, 0)):
                recorder.begin_step(step)
                engine.step(batches, _probe_loss)
        finally:
            recorder.uninstall()
        _ENGINE_CACHE[key] = (engine, time.perf_counter() - begin)
    return _ENGINE_CACHE[key][0]


def variant_grid(schedule):
    """The driver's 16 O/F/H x update-mode rewrites, in sweep order."""
    for overlap in (False, True):
        for flatten in (False, True):
            for hierarchical in (False, True):
                for per_bucket in (False, True):
                    yield dataclasses.replace(
                        schedule,
                        overlap_backward=overlap,
                        flatten=flatten,
                        hierarchical=hierarchical,
                        per_bucket_updates=per_bucket,
                    )


# ----------------------------------------------------------------------
# The oracle: symbolic IR == engine-built IR, per op, per rank.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", WORLD_SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("name", ALL_NAMES)
def test_symbolic_sweep_is_event_identical_to_engine_sweep(name, shape):
    num_nodes, workers_per_node = shape
    world = num_nodes * workers_per_node
    engine = built_engine(name, num_nodes, workers_per_node)
    spec = ClusterSpec(num_nodes=num_nodes, workers_per_node=workers_per_node)
    nodes = spec.node_groups()

    engine_subjects = [
        lower_schedule(variant, world, nodes=nodes)
        for variant in variant_grid(engine.schedule)
    ]
    point = PlanPoint(
        algorithm=name, world_size=world, workers_per_node=workers_per_node
    )
    symbolic_subjects = sweep_variants(point)

    assert len(engine_subjects) == len(symbolic_subjects) == 16
    for engine_subject, symbolic_subject in zip(engine_subjects, symbolic_subjects):
        assert symbolic_subject.layout == engine_subject.layout
        for rank in range(world):
            assert (
                symbolic_subject.trace.ops_of(rank)
                == engine_subject.trace.ops_of(rank)
            ), f"rank {rank} diverges for {name} @ {shape}"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_symbolic_schedule_matches_engine_schedule(name):
    """The reconstructed BucketSchedule equals the engine's, field for field."""
    engine = built_engine(name, 2, 2)
    point = PlanPoint(algorithm=name, world_size=4, workers_per_node=2)
    assert symbolic_schedule(point) == engine.schedule


def test_probe_profile_matches_live_profiler():
    """The static ready inventory is what GradientReadyProfiler records."""
    engine = built_engine("allreduce", 2, 2)
    live = [(r.name, r.elements) for r in engine.profile.records]
    assert live == list(PROBE_READY_INVENTORY)
    static = probe_profile()
    assert [(r.name, r.elements, r.ready_index) for r in static.records] == [
        (r.name, r.elements, r.ready_index) for r in engine.profile.records
    ]


# ----------------------------------------------------------------------
# Speed: the economics the pruner rests on.
# ----------------------------------------------------------------------
def test_symbolic_lowering_is_50x_faster_than_execution():
    """Checking a plan symbolically must be >= 50x cheaper than checking it
    by execution (engine construction + the driver's recorded dry run), per
    plan, averaged over the full sweep — no engine, transport or recorded
    trace on the symbolic side."""
    executed = 0.0
    executed_plans = 0
    for name in ALL_NAMES:
        built_engine(name, 2, 2)  # populates the cache and its timing
        executed += _ENGINE_CACHE[(name, 2, 2)][1]
        executed_plans += 1

    # timeit-style measurement: collector pauses scale with the whole test
    # session's live heap, not with the lowering under test, so they must
    # not be charged to the symbolic side.
    gc.collect()
    gc.disable()
    try:
        begin = time.perf_counter()
        symbolic_plans = 0
        for name in ALL_NAMES:
            subjects = sweep_variants(
                PlanPoint(algorithm=name, world_size=4, workers_per_node=2)
            )
            symbolic_plans += len(subjects)
        symbolic = time.perf_counter() - begin
    finally:
        gc.enable()

    per_plan_executed = executed / executed_plans
    per_plan_symbolic = symbolic / symbolic_plans
    assert per_plan_executed >= 50 * per_plan_symbolic, (
        f"symbolic lowering only {per_plan_executed / per_plan_symbolic:.1f}x "
        f"faster than execution ({per_plan_executed * 1e3:.2f}ms vs "
        f"{per_plan_symbolic * 1e3:.3f}ms per plan)"
    )


# ----------------------------------------------------------------------
# Gossip lowering: peer structure and checker verdicts.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["decentralized", "decentralized-8bit"])
def test_gossip_point_lowers_clean(name):
    subject = lower_point(PlanPoint(algorithm=name, world_size=4, workers_per_node=2))
    findings = run_checkers(subject) + run_checkers(subject, HB_CHECKERS)
    assert findings == [], [f.render() for f in findings]
    kinds = {op.kind for op in subject.trace.all_ops()}
    assert kinds & {"gossip", "compressed_gossip"}


def test_ring_gossip_declares_expected_topology():
    subject = lower_point(
        PlanPoint(algorithm="decentralized-8bit", world_size=4, workers_per_node=2)
    )
    assert subject.expected_topology == "ring"
    for op in subject.trace.all_ops():
        if op.kind == "compressed_gossip":
            left = (op.rank - 1) % 4
            right = (op.rank + 1) % 4
            assert set(op.peers) == {left, right}


def test_staleness_note_mirrors_algorithm_declaration():
    """The symbolic subject carries a staleness bound exactly when the
    algorithm declares one — no registry algorithm currently does, so the
    note is absent and the hb-staleness rule stays inactive, matching the
    driver's dry-run subjects."""
    from repro.analysis.symbolic import staleness_bound_of

    for name in ALL_NAMES:
        subject = lower_point(
            PlanPoint(algorithm=name, world_size=4, workers_per_node=2)
        )
        bound = staleness_bound_of(name)
        assert subject.notes.get("staleness_bound") == bound or (
            bound is None and "staleness_bound" not in subject.notes
        )


# ----------------------------------------------------------------------
# Multi-step structure: frequency and warmup phases.
# ----------------------------------------------------------------------
def test_local_sgd_alternates_silent_and_synchronized_steps():
    point = PlanPoint(
        algorithm="local-sgd", world_size=4, workers_per_node=2,
        frequency=2, steps=4,
    )
    subject = lower_point(point)
    comm_steps = {op.step for op in subject.trace.all_ops() if op.kind == "allreduce"}
    assert comm_steps == {1, 3}  # steps 0 and 2 are local-only
    silent_updates = [
        op for op in subject.trace.ops_of(0)
        if op.kind == "opt_step" and op.step in (0, 2)
    ]
    assert silent_updates and all(op.gate == "" for op in silent_updates)
    findings = run_checkers(subject) + run_checkers(subject, HB_CHECKERS)
    assert findings == [], [f.render() for f in findings]


def test_1bit_adam_warmup_runs_full_precision_then_compresses():
    point = PlanPoint(
        algorithm="1bit-adam", world_size=4, workers_per_node=2,
        warmup_steps=1, steps=2,
    )
    subject = lower_point(point)
    step0 = [op for op in subject.trace.ops_of(0) if op.step == 0]
    step1 = [op for op in subject.trace.ops_of(0) if op.step == 1]
    assert any(op.kind == "allreduce" for op in step0)
    assert not any(op.kind == "compressed_allreduce" for op in step0)
    compressed = [op for op in step1 if op.kind == "compressed_allreduce"]
    assert compressed
    for op in compressed:
        assert op.compressor == "1bit" and op.biased and op.error_feedback
    findings = run_checkers(subject) + run_checkers(subject, HB_CHECKERS)
    assert findings == [], [f.render() for f in findings]
