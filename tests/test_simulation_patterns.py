"""Dry-run pattern schedules: structure, sizes and edge cases."""

import pytest

from repro.cluster import ClusterSpec, Transport
from repro.comm import CommGroup
from repro.core.primitives import RingPeers
from repro.simulation.patterns import (
    SizedPayload,
    dry_broadcast,
    dry_decentralized,
    dry_gather,
    dry_hierarchical_allreduce,
    dry_ps_push_pull,
    dry_ring_allreduce,
    dry_scatter_reduce,
    fp32_wire,
)


def fresh_group(nodes=2, workers=4):
    spec = ClusterSpec(num_nodes=nodes, workers_per_node=workers)
    return CommGroup(Transport(spec), list(range(spec.world_size)))


class TestBasics:
    def test_sized_payload_reports_wire_bytes(self):
        assert SizedPayload(123.0).wire_bytes == 123.0

    def test_fp32_wire(self):
        assert fp32_wire(100) == 400.0

    def test_all_patterns_return_positive_elapsed(self):
        elements = 1 << 16
        for pattern in (
            lambda g: dry_ring_allreduce(g, elements),
            lambda g: dry_scatter_reduce(g, elements),
            lambda g: dry_gather(g, elements),
            lambda g: dry_broadcast(g, elements),
            lambda g: dry_hierarchical_allreduce(g, elements),
            lambda g: dry_decentralized(g, elements, RingPeers()),
            lambda g: dry_ps_push_pull(g, elements),
        ):
            assert pattern(fresh_group()) > 0.0

    def test_single_member_patterns_free(self):
        group = fresh_group(nodes=1, workers=1)
        assert dry_ring_allreduce(group, 1000) == 0.0
        assert dry_scatter_reduce(group, 1000) == 0.0

    def test_elapsed_equals_clock_delta(self):
        group = fresh_group()
        before = group.transport.max_time()
        elapsed = dry_ring_allreduce(group, 1 << 18)
        assert group.transport.max_time() - before == pytest.approx(elapsed)


class TestByteAccounting:
    def test_ring_bytes(self):
        group = fresh_group(nodes=1, workers=4)
        elements = 4096
        dry_ring_allreduce(group, elements)
        expected = 2 * 3 * 4 * fp32_wire(elements // 4)  # rounds x members x chunk
        assert group.transport.stats.total_bytes == pytest.approx(expected)

    def test_scatter_reduce_bytes(self):
        group = fresh_group(nodes=1, workers=4)
        elements = 4096
        dry_scatter_reduce(group, elements)
        chunk = fp32_wire(elements // 4)
        expected = 2 * 4 * 3 * chunk  # two phases of n(n-1) chunk messages
        assert group.transport.stats.total_bytes == pytest.approx(expected)

    def test_compressed_wire_fn_respected(self):
        group_fp = fresh_group()
        dry_scatter_reduce(group_fp, 4096)
        group_lp = fresh_group()
        dry_scatter_reduce(group_lp, 4096, wire_phase1=lambda n: n, wire_phase2=lambda n: n)
        assert group_lp.transport.stats.total_bytes == pytest.approx(
            group_fp.transport.stats.total_bytes / 4
        )

    def test_ps_local_aggregation_reduces_inter_bytes(self):
        group_a = fresh_group()
        dry_ps_push_pull(group_a, 1 << 18, local_aggregation=False)
        group_b = fresh_group()
        dry_ps_push_pull(group_b, 1 << 18, local_aggregation=True)
        assert (
            group_b.transport.stats.inter_node_bytes
            < group_a.transport.stats.inter_node_bytes
        )


class TestHierarchicalStructure:
    def test_hierarchical_decentralized_syncs_nodes(self):
        group = fresh_group()
        dry_decentralized(group, 1 << 16, RingPeers(), hierarchical=True)
        # All ranks advanced (intra-node allreduce + broadcast touch everyone).
        for rank in group.ranks:
            assert group.transport.now(rank) > 0

    def test_flat_decentralized_touches_only_neighbors(self):
        spec = ClusterSpec(num_nodes=8, workers_per_node=1)
        group = CommGroup(Transport(spec), list(range(8)))
        from repro.core.primitives import RandomPeers

        dry_decentralized(group, 1 << 16, RandomPeers(seed=0), step=0)
        # Every rank is in exactly one pair; everyone moved.
        assert group.transport.stats.messages == 8
