"""ScatterReduce: exact aggregation and compression hook plumbing."""

import numpy as np
import pytest

from repro.comm import CommGroup, scatter_reduce
from repro.compression import FP16Compressor, QSGDCompressor

from .conftest import make_group


@pytest.fixture
def arrays(rng, group):
    return [rng.standard_normal(41) for _ in range(group.size)]


class TestExactness:
    def test_identity_equals_sum(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        for out in scatter_reduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_single_member(self, transport, rng):
        g = CommGroup(transport, [2])
        x = rng.standard_normal(5)
        (out,) = scatter_reduce([x], g)
        np.testing.assert_allclose(out, x)

    def test_two_rounds_only(self, group, arrays):
        scatter_reduce(arrays, group)
        assert group.transport.stats.rounds == 2

    def test_all_members_agree(self, group, arrays):
        outs = scatter_reduce(arrays, group)
        for out in outs[1:]:
            np.testing.assert_array_equal(out, outs[0])

    @pytest.mark.parametrize("size", [1, 7, 8, 65])
    def test_sizes_smaller_and_larger_than_group(self, rng, size):
        group = make_group(2, 4)
        arrays = [rng.standard_normal(size) for _ in range(8)]
        expected = np.sum(arrays, axis=0)
        for out in scatter_reduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-10)


class TestCompressionHooks:
    def test_fp16_phase_hooks_approximate_sum(self, group, arrays):
        codec = FP16Compressor()
        outs = scatter_reduce(
            arrays,
            group,
            compress_phase1=lambda c, i, j: codec.compress(c),
            decompress_phase1=codec.decompress,
            compress_phase2=lambda c, i, j: codec.compress(c),
            decompress_phase2=codec.decompress,
        )
        expected = np.sum(arrays, axis=0)
        for out in outs:
            np.testing.assert_allclose(out, expected, atol=0.05)

    def test_hooks_receive_member_and_chunk_indices(self, group, arrays):
        seen = []

        def compress(chunk, member, chunk_id):
            seen.append((member, chunk_id))
            return chunk.copy()

        scatter_reduce(arrays, group, compress_phase1=compress)
        n = group.size
        assert set(seen) == {(i, j) for i in range(n) for j in range(n)}

    def test_compressed_traffic_smaller(self, rng):
        group_fp = make_group(2, 2)
        group_q = make_group(2, 2)
        arrays = [rng.standard_normal(1000) for _ in range(4)]
        scatter_reduce(arrays, group_fp)
        fp_bytes = group_fp.transport.stats.total_bytes

        codec = QSGDCompressor(bits=8)
        scatter_reduce(
            arrays,
            group_q,
            compress_phase1=lambda c, i, j: codec.compress(c),
            decompress_phase1=codec.decompress,
            compress_phase2=lambda c, i, j: codec.compress(c),
            decompress_phase2=codec.decompress,
        )
        q_bytes = group_q.transport.stats.total_bytes
        assert q_bytes < fp_bytes / 2

    def test_qsgd_aggregate_is_close(self, rng):
        group = make_group(2, 2)
        arrays = [rng.standard_normal(500) for _ in range(4)]
        codec = QSGDCompressor(bits=8, rng=np.random.default_rng(1))
        outs = scatter_reduce(
            arrays,
            group,
            compress_phase1=lambda c, i, j: codec.compress(c),
            decompress_phase1=codec.decompress,
            compress_phase2=lambda c, i, j: codec.compress(c),
            decompress_phase2=codec.decompress,
        )
        expected = np.sum(arrays, axis=0)
        err = np.linalg.norm(outs[0] - expected) / np.linalg.norm(expected)
        assert err < 0.1
