"""Silver-bullet grid shape checks and runner formatting."""

import pytest

from repro.cluster import paper_cluster
from repro.experiments import silver_bullet
from repro.models import vgg16_spec
from repro.simulation import CommCostModel, bagua_system, simulate_epoch


@pytest.fixture(scope="module")
def grid():
    return silver_bullet.run(networks=("100gbps", "10gbps"))


class TestSilverBullet:
    def test_multiple_distinct_winners(self, grid):
        assert len(grid.distinct_winners()) >= 3

    def test_unsafe_algorithms_never_win(self, grid):
        # 1-bit Adam must not win any conv/recurrent cell.
        for (_net, model), winner in grid.winners.items():
            if model in ("VGG16", "LSTM+AlexNet"):
                assert winner != "1bit-adam", model

    def test_compression_wins_slow_bert(self, grid):
        assert grid.winners[("10gbps", "BERT-LARGE")] == "1bit-adam"

    def test_winner_never_slower_than_allreduce(self, grid):
        # allreduce is always safe, so the safe winner can't lose to it.
        for key, winner in grid.winners.items():
            cell = grid.grid[key]
            assert cell[winner] <= cell["allreduce"] * 1.0001

    def test_render(self, grid):
        text = grid.render()
        assert "distinct winners" in text
        assert "10gbps" in text


class TestRunnerFormatting:
    def test_epoch_result_str(self):
        cluster = paper_cluster("25gbps")
        cost = CommCostModel(cluster)
        result = simulate_epoch(vgg16_spec(), cluster, bagua_system(cost, "allreduce"))
        text = str(result)
        assert "VGG16" in text
        assert "epoch" in text
        assert "iters" in text

    def test_heterogeneity_rows(self):
        from repro.models import lstm_alexnet_spec
        from repro.simulation import run_heterogeneity_study

        result = run_heterogeneity_study(lstm_alexnet_spec(), paper_cluster("25gbps"))
        rows = result.rows()
        assert [r["setting"] for r in rows] == ["uniform", "straggler"]
        assert rows[1]["sync"] > rows[0]["sync"]
