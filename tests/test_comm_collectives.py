"""Collectives: correctness of data movement and traffic accounting."""

import numpy as np
import pytest

from repro.comm import (
    CommGroup,
    allreduce_via_root,
    broadcast,
    gather,
    reduce_to_root,
    ring_allreduce,
    ring_reduce_scatter,
    send_recv,
)
from repro.comm.collectives import _chunk_bounds, allgather_payloads, alltoall

from .conftest import make_group


@pytest.fixture
def arrays(rng, group):
    return [rng.standard_normal(53) for _ in range(group.size)]


class TestChunkBounds:
    def test_covers_range_exactly(self):
        bounds = _chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_handles_fewer_elements_than_parts(self):
        bounds = _chunk_bounds(2, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == 2
        assert len(bounds) == 4


class TestGroup:
    def test_rejects_empty(self, transport):
        with pytest.raises(ValueError):
            CommGroup(transport, [])

    def test_rejects_duplicates(self, transport):
        with pytest.raises(ValueError):
            CommGroup(transport, [0, 0])

    def test_rejects_out_of_world(self, transport):
        with pytest.raises(ValueError):
            CommGroup(transport, [99])

    def test_node_subgroups(self, group):
        subs = group.node_subgroups()
        assert [s.ranks for s in subs] == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_leader_group(self, group):
        assert group.leader_group().ranks == [0, 4]

    def test_subgroup_membership_enforced(self, group):
        sub = group.subgroup([0, 1])
        assert sub.size == 2
        with pytest.raises(ValueError):
            sub.subgroup([5])


class TestRingAllreduce:
    def test_computes_exact_sum(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        for out in ring_allreduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_single_member(self, transport, rng):
        g = CommGroup(transport, [3])
        x = rng.standard_normal(7)
        (out,) = ring_allreduce([x], g)
        np.testing.assert_allclose(out, x)

    def test_input_arrays_unchanged(self, group, arrays):
        snapshots = [a.copy() for a in arrays]
        ring_allreduce(arrays, group)
        for a, s in zip(arrays, snapshots):
            np.testing.assert_array_equal(a, s)

    def test_rejects_shape_mismatch(self, group, rng):
        bad = [rng.standard_normal(5) for _ in range(group.size)]
        bad[2] = rng.standard_normal(6)
        with pytest.raises(ValueError):
            ring_allreduce(bad, group)

    def test_rejects_2d(self, group, rng):
        bad = [rng.standard_normal((2, 2)) for _ in range(group.size)]
        with pytest.raises(ValueError):
            ring_allreduce(bad, group)

    def test_message_rounds(self, group, arrays):
        ring_allreduce(arrays, group)
        # 2(n-1) rounds of n messages each.
        n = group.size
        assert group.transport.stats.rounds == 2 * (n - 1)
        assert group.transport.stats.messages == 2 * (n - 1) * n

    def test_reduce_scatter_chunks(self, group, arrays):
        chunks = ring_reduce_scatter(arrays, group)
        expected = np.sum(arrays, axis=0)
        bounds = _chunk_bounds(len(arrays[0]), group.size)
        for i, chunk in enumerate(chunks):
            lo, hi = bounds[(i + 1) % group.size]
            np.testing.assert_allclose(chunk, expected[lo:hi], atol=1e-10)

    @pytest.mark.parametrize("nodes,workers", [(1, 2), (1, 3), (2, 2), (3, 4)])
    def test_various_world_sizes(self, rng, nodes, workers):
        group = make_group(nodes, workers)
        arrays = [rng.standard_normal(17) for _ in range(group.size)]
        expected = np.sum(arrays, axis=0)
        for out in ring_allreduce(arrays, group):
            np.testing.assert_allclose(out, expected, atol=1e-10)


class TestStarCollectives:
    def test_gather(self, group, arrays):
        gathered = gather(arrays, group, root_index=2)
        assert len(gathered) == group.size
        for orig, got in zip(arrays, gathered):
            np.testing.assert_array_equal(orig, got)

    def test_broadcast(self, group, rng):
        x = rng.standard_normal(9)
        results = broadcast(x, group, root_index=1)
        for out in results:
            np.testing.assert_array_equal(out, x)

    def test_reduce_to_root(self, group, arrays):
        total = reduce_to_root(arrays, group)
        np.testing.assert_allclose(total, np.sum(arrays, axis=0))

    def test_allreduce_via_root(self, group, arrays):
        expected = np.sum(arrays, axis=0)
        for out in allreduce_via_root(arrays, group):
            np.testing.assert_allclose(out, expected)

    def test_send_recv(self, group, rng):
        x = rng.standard_normal(4)
        got = send_recv(group, 1, 6, x)
        np.testing.assert_array_equal(got, x)


class TestAllToAll:
    def test_grid_transpose(self, group):
        n = group.size
        parts = [[(i, j) for j in range(n)] for i in range(n)]
        received = alltoall(parts, group)
        for j in range(n):
            for i in range(n):
                assert received[j][i] == (i, j)

    def test_rejects_ragged(self, group):
        parts = [[0] * group.size for _ in range(group.size)]
        parts[0] = [0]
        with pytest.raises(ValueError):
            alltoall(parts, group)

    def test_allgather_payloads(self, group):
        payloads = [f"p{i}" for i in range(group.size)]
        results = allgather_payloads(payloads, group)
        for row in results:
            assert row == payloads


class TestTrafficShape:
    def test_ring_allreduce_bytes_per_worker(self, rng):
        group = make_group(2, 2)
        size = 100
        arrays = [rng.standard_normal(size) for _ in range(4)]
        ring_allreduce(arrays, group)
        sent = group.transport.stats.per_rank_sent_bytes
        # Each member sends 2(n-1) chunks of ~size/n doubles (+8B chunk tag).
        expected = 2 * 3 * (size / 4 * 8 + 8)
        for rank in range(4):
            assert sent[rank] == pytest.approx(expected, rel=0.05)
