"""The Listing-2 communicator facade and engine robustness features."""

import numpy as np
import pytest

from repro.algorithms import AllreduceSGD, QSGD
from repro.cluster import ClusterSpec, Transport, make_workers
from repro.comm import CommGroup
from repro.compression import OneBitCompressor, QSGDCompressor
from repro.core import (
    Algorithm,
    BaguaEngine,
    GlobalComm,
    RandomPeers,
    get_global_comm,
)
from repro.tensor import SGD
from repro.training import DistributedTrainer, get_task

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)


@pytest.fixture
def comm():
    transport = Transport(WORLD)
    group = CommGroup(transport, list(range(4)))
    return GlobalComm(group)


class TestGlobalComm:
    def test_cen_fp_sync(self, comm, rng):
        arrays = [rng.standard_normal(16) for _ in range(4)]
        outs = comm.cen_fp_sync.exec(arrays)
        expected = np.sum(arrays, axis=0)
        for out in outs:
            np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_cen_lp_sync_with_states(self, comm, rng):
        codec = OneBitCompressor()
        worker_err, server_err = comm.cen_lp_sync.init_states(codec)
        assert len(worker_err) == len(server_err) == 4
        arrays = [rng.standard_normal(16) for _ in range(4)]
        outs = comm.cen_lp_sync.exec(arrays, codec, worker_err, server_err)
        assert outs[0].shape == (16,)
        # Residual state was populated by the call.
        assert worker_err[0].total_residual_norm() > 0

    def test_cen_lp_sync_stateless(self, comm, rng):
        codec = QSGDCompressor(bits=8)
        arrays = [rng.standard_normal(64) for _ in range(4)]
        outs = comm.cen_lp_sync.exec(arrays, codec)
        expected = np.sum(arrays, axis=0)
        assert np.linalg.norm(outs[0] - expected) / np.linalg.norm(expected) < 0.2

    def test_decen_fp_sync(self, comm, rng):
        arrays = [rng.standard_normal(8) for _ in range(4)]
        outs = comm.decen_fp_sync.exec(arrays, peers=RandomPeers(seed=0), step=1)
        np.testing.assert_allclose(
            np.mean(outs, axis=0), np.mean(arrays, axis=0), atol=1e-10
        )

    def test_decen_lp_sync(self, comm, rng):
        arrays = [rng.standard_normal(32) for _ in range(4)]
        outs = comm.decen_lp_sync.exec(arrays, QSGDCompressor(bits=8))
        assert len(outs) == 4

    def test_world_size(self, comm):
        assert comm.world_size == 4


class ListingTwoAlgorithm(Algorithm):
    """A Listing-2-style algorithm written purely against the facade."""

    name = "listing2"

    def setup(self, engine: BaguaEngine) -> None:
        self.global_comm = get_global_comm(engine)
        self.codec = OneBitCompressor()
        self.worker_err, self.server_err = self.global_comm.cen_lp_sync.init_states(
            self.codec
        )

    def on_backward_done(self, engine: BaguaEngine, step: int) -> None:
        n = engine.world_size
        for k in range(engine.num_buckets):
            summed = self.global_comm.cen_lp_sync.exec(
                engine.grads_of_bucket(k), self.codec, self.worker_err, self.server_err
            )
            engine.set_grads_of_bucket(k, [s / n for s in summed])
        for worker in engine.workers:
            worker.optimizer_step_on_buckets()


class TestListingTwoStyle:
    def test_facade_algorithm_trains(self):
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, ListingTwoAlgorithm(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        record = trainer.train(loaders, task.loss_fn, epochs=3)
        assert record.epoch_losses[-1] < record.epoch_losses[0]


@pytest.mark.filterwarnings("ignore:invalid value encountered")
class TestGradGuard:
    def _engine(self, grad_guard):
        from repro.tensor import Linear, Sequential

        workers = make_workers(WORLD)
        models = [
            Sequential(Linear(3, 2, rng=np.random.default_rng(0))) for _ in range(4)
        ]
        optimizers = [SGD(m.parameters(), lr=0.1) for m in models]
        return BaguaEngine(
            models, optimizers, AllreduceSGD(), workers, grad_guard=grad_guard
        )

    @staticmethod
    def _poisoned_loss(model, batch):
        from repro.tensor import Tensor
        from repro.tensor import functional as F

        inputs, labels = batch
        logits = model(Tensor(inputs * np.inf))
        return F.mse_loss(logits, labels)

    def test_guard_raises_on_nan_gradient(self, rng):
        engine = self._engine(grad_guard=True)
        batches = [(rng.standard_normal((2, 3)), rng.standard_normal((2, 2)))] * 4
        with pytest.raises(FloatingPointError, match="rank"):
            engine.step(batches, self._poisoned_loss)

    def test_guard_off_by_default(self, rng):
        engine = self._engine(grad_guard=False)
        batches = [(rng.standard_normal((2, 3)), rng.standard_normal((2, 2)))] * 4
        engine.step(batches, self._poisoned_loss)  # no raise


class TestTrafficRecords:
    def test_epoch_bytes_recorded_and_monotone(self):
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(), seed=0
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        record = trainer.train(loaders, task.loss_fn, epochs=3)
        assert len(record.epoch_comm_bytes) == 3
        assert record.epoch_comm_bytes[0] < record.epoch_comm_bytes[2]
        assert record.bytes_in_epoch(1) > 0
        with pytest.raises(IndexError):
            record.bytes_in_epoch(7)

    def test_compression_visible_in_epoch_bytes(self):
        task = get_task("VGG16")

        def run(algorithm):
            trainer = DistributedTrainer(
                WORLD, task.model_factory, task.make_optimizer, algorithm, seed=0
            )
            loaders = task.make_loaders(WORLD.world_size, seed=0)
            return trainer.train(loaders, task.loss_fn, epochs=2)

        exact = run(AllreduceSGD())
        quant = run(QSGD())
        assert quant.bytes_in_epoch(1) < 0.5 * exact.bytes_in_epoch(1)
