"""Engine x config integration: every algorithm under every O/F/H setting."""

import numpy as np
import pytest

from repro.algorithms import AllreduceSGD, QSGD, make_algorithm
from repro.cluster import ClusterSpec
from repro.core import BaguaConfig
from repro.training import DistributedTrainer, get_task

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)

CONFIGS = [
    BaguaConfig(overlap=True, flatten=True, hierarchical=False),
    BaguaConfig(overlap=True, flatten=True, hierarchical=True),
    BaguaConfig(overlap=True, flatten=False, hierarchical=False),
    BaguaConfig(overlap=False, flatten=True, hierarchical=True),
]


def losses_for(algorithm, config, epochs=2, seed=0):
    task = get_task("VGG16")
    trainer = DistributedTrainer(
        WORLD, task.model_factory, task.make_optimizer, algorithm,
        config=config, seed=seed,
    )
    loaders = task.make_loaders(WORLD.world_size, seed=seed)
    return trainer.train(loaders, task.loss_fn, epochs=epochs).epoch_losses


class TestConfigInvariance:
    """O/F/H are performance switches: numerics must not change (for exact
    algorithms) or must stay convergent (for relaxed ones)."""

    def test_allreduce_identical_under_all_configs(self):
        reference = losses_for(AllreduceSGD(), CONFIGS[0])
        for config in CONFIGS[1:]:
            np.testing.assert_allclose(
                losses_for(AllreduceSGD(), config), reference, atol=1e-9
            )

    def test_qsgd_converges_under_all_configs(self):
        for config in CONFIGS:
            losses = losses_for(QSGD(), config)
            assert losses[-1] < losses[0], config.describe()

    @pytest.mark.parametrize(
        "name",
        ["decentralized", "decentralized-8bit", "async", "local-sgd",
         "qsparse-local-sgd"],
    )
    def test_all_algorithms_run_hierarchical(self, name):
        config = BaguaConfig(hierarchical=True)
        losses = losses_for(make_algorithm(name), config)
        assert np.isfinite(losses[-1])
        assert losses[-1] < losses[0] * 2  # no explosion

    def test_unflattened_buckets_update_weights(self):
        # Regression guard: without flattening, optimizer results must be
        # scattered back into parameter storage.
        config = BaguaConfig(flatten=False)
        task = get_task("VGG16")
        trainer = DistributedTrainer(
            WORLD, task.model_factory, task.make_optimizer, AllreduceSGD(),
            config=config, seed=0,
        )
        loaders = task.make_loaders(WORLD.world_size, seed=0)
        before = trainer.engine.workers[0].model.state_dict()
        trainer.train(loaders, task.loss_fn, epochs=1)
        after = trainer.engine.workers[0].model.state_dict()
        changed = any(
            not np.array_equal(before[k], after[k]) for k in before
        )
        assert changed
