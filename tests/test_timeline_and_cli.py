"""Pipeline span timelines, Gantt rendering, and the CLI entry point."""

import pytest

from repro.__main__ import main as cli_main
from repro.cluster import paper_cluster
from repro.models import vgg16_spec
from repro.simulation import CommCostModel, bagua_system, pytorch_ddp_system, simulate_iteration, vanilla_system
from repro.simulation.pipeline import Span
from repro.simulation.timeline import compare_systems, render_gantt


@pytest.fixture(scope="module")
def cluster():
    return paper_cluster("25gbps")


@pytest.fixture(scope="module")
def cost(cluster):
    return CommCostModel(cluster)


class TestSpans:
    def test_spans_recorded_for_last_iteration(self, cluster, cost):
        timing = simulate_iteration(vgg16_spec(), cluster, pytorch_ddp_system(cost))
        assert timing.spans
        kinds = {s.kind for s in timing.spans}
        assert kinds == {"fwd", "bwd", "comm", "update"}

    def test_spans_well_formed(self, cluster, cost):
        timing = simulate_iteration(vgg16_spec(), cluster, pytorch_ddp_system(cost))
        for span in timing.spans:
            assert span.end >= span.start
            assert span.stream in ("compute", "comm")
            assert span.duration >= 0

    def test_streams_never_self_overlap(self, cluster, cost):
        timing = simulate_iteration(vgg16_spec(), cluster, bagua_system(cost, "allreduce"))
        for stream in ("compute", "comm"):
            spans = sorted(
                (s for s in timing.spans if s.stream == stream), key=lambda s: s.start
            )
            for a, b in zip(spans, spans[1:]):
                assert b.start >= a.end - 1e-12

    def test_vanilla_comm_after_backward(self, cluster, cost):
        timing = simulate_iteration(vgg16_spec(), cluster, vanilla_system(cost))
        bwd_end = max(s.end for s in timing.spans if s.kind == "bwd")
        first_comm = min(s.start for s in timing.spans if s.kind == "comm")
        assert first_comm >= bwd_end - 1e-12

    def test_ddp_comm_overlaps_backward(self, cluster, cost):
        timing = simulate_iteration(vgg16_spec(), cluster, pytorch_ddp_system(cost))
        bwd_end = max(s.end for s in timing.spans if s.kind == "bwd")
        first_comm = min(s.start for s in timing.spans if s.kind == "comm")
        assert first_comm < bwd_end


class TestGanttRendering:
    def test_render_contains_streams(self, cluster, cost):
        timing = simulate_iteration(vgg16_spec(), cluster, pytorch_ddp_system(cost))
        text = render_gantt(timing.spans, width=60, title="ddp")
        assert "compute |" in text and "comm    |" in text
        assert "ddp" in text

    def test_render_empty(self):
        assert "(no spans)" in render_gantt([], title="x")

    def test_render_glyphs(self):
        spans = [
            Span("compute", "fwd", "f", 0.0, 1.0),
            Span("comm", "comm", "c", 1.0, 2.0),
        ]
        text = render_gantt(spans, width=10)
        assert "F" in text and "c" in text

    def test_compare_systems_shared_axis(self, cluster, cost):
        text = compare_systems(
            vgg16_spec(), cluster,
            [vanilla_system(cost), pytorch_ddp_system(cost)],
            width=50,
        )
        assert "Vanilla" in text and "PyTorch-DDP" in text
        assert text.count("compute |") == 2


class TestCLI:
    def test_run_table1(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_run_table2(self, capsys):
        assert cli_main(["run", "table2"]) == 0
        assert "VGG16" in capsys.readouterr().out

    def test_autotune_known_model(self, capsys):
        assert cli_main(["autotune", "VGG16", "--network", "25gbps"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out

    def test_autotune_unknown_model(self, capsys):
        assert cli_main(["autotune", "ResNet"]) == 2

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "table99"])


class TestTimeToLoss:
    def test_report_runs_and_bagua_wins(self):
        from repro.experiments import time_to_loss

        report = time_to_loss.run(task_names=("VGG16",), epochs=3)
        result = report.results["VGG16"]
        assert result.speedup is not None
        assert result.speedup > 1.0
        assert "time to target loss" in report.render()
