"""Link cost model and network presets."""

import pytest

from repro.cluster import GBPS, Link, NVLINK, TCP_10G, TCP_25G, TCP_100G, preset


class TestLink:
    def test_transfer_time_components(self):
        link = Link(latency_s=1e-3, bandwidth_Bps=1e9, ramp_bytes=0)
        assert link.transfer_time(1e9) == pytest.approx(1e-3 + 1.0)

    def test_ramp_penalizes_small_messages(self):
        link = Link(latency_s=0, bandwidth_Bps=1e9, ramp_bytes=128 * 1024)
        tiny = link.transfer_time(1024)
        # Effective bandwidth of a 1 KB message is far below line rate.
        assert tiny > 100 * (1024 / 1e9)

    def test_ramp_negligible_for_large_messages(self):
        link = Link(latency_s=0, bandwidth_Bps=1e9, ramp_bytes=128 * 1024)
        big = 100 * 1024 * 1024
        assert link.transfer_time(big) < 1.01 * (big / 1e9) + 0.001

    def test_wire_time_excludes_latency(self):
        link = Link(latency_s=5.0, bandwidth_Bps=1e9, ramp_bytes=0)
        assert link.wire_time(1e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(latency_s=-1, bandwidth_Bps=1e9)
        with pytest.raises(ValueError):
            Link(latency_s=0, bandwidth_Bps=0)
        with pytest.raises(ValueError):
            Link(latency_s=0, bandwidth_Bps=1, ramp_bytes=-1)
        with pytest.raises(ValueError):
            Link(latency_s=0, bandwidth_Bps=1e9).transfer_time(-5)

    def test_with_latency(self):
        link = TCP_25G.with_latency(1e-3)
        assert link.latency_s == 1e-3
        assert link.bandwidth_Bps == TCP_25G.bandwidth_Bps

    def test_with_bandwidth_gbps(self):
        link = TCP_25G.with_bandwidth_gbps(40)
        assert link.bandwidth_Bps == pytest.approx(40 * GBPS)


class TestPresets:
    def test_ordering(self):
        assert TCP_10G.bandwidth_Bps < TCP_25G.bandwidth_Bps < TCP_100G.bandwidth_Bps

    def test_nvlink_dwarfs_tcp(self):
        assert NVLINK.bandwidth_Bps > 10 * TCP_100G.bandwidth_Bps
        assert NVLINK.latency_s < TCP_10G.latency_s

    def test_preset_lookup(self):
        assert preset("10gbps") is TCP_10G
        assert preset("25GBPS") is TCP_25G

    def test_preset_unknown(self):
        with pytest.raises(KeyError):
            preset("56gbps")

    def test_gbps_constant(self):
        assert GBPS == pytest.approx(1.25e8)
