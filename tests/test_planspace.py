"""Plan-space verifier: negative fixtures per static rule, pruning, CLI.

Each negative fixture is a minimal broken plan description that must produce
*exactly one* finding, with a location — the root cause, not a cascade of
downstream checker noise.
"""

import json

import pytest

from repro.__main__ import main
from repro.algorithms.registry import ALGORITHM_REGISTRY
from repro.analysis import (
    PlanPoint,
    check_plan_static,
    enumerate_points,
    gossip_weight_matrix,
    prune_points,
    sweep_planspace,
    verify_point,
)
from repro.analysis.planspace import PLAN_OVERRIDES
from repro.analysis.symbolic import comm_model_of, gossip_peer_sets


def the_one_finding(findings):
    assert len(findings) == 1, [f.render() for f in findings]
    (finding,) = findings
    assert finding.location(), finding.render()
    assert finding.plan, finding.render()
    return finding


# ----------------------------------------------------------------------
# Negative fixtures: one broken plan, one root-cause finding each.
# ----------------------------------------------------------------------
class TestStaticRules:
    def test_asymmetric_gossip_peers(self):
        point = PlanPoint(
            algorithm="decentralized", world_size=2, workers_per_node=1,
            peer_sets=((1,), ()),  # rank 0 lists 1; rank 1 lists nobody
        )
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-gossip-closure"
        assert finding.severity == "error"
        assert finding.rank == 0

    def test_non_doubly_stochastic_weight_matrix(self):
        # A path graph 0-1-2: peers are mutual, but rank 1's column of the
        # averaging matrix sums to 4/3 — mass drifts toward the middle.
        point = PlanPoint(
            algorithm="decentralized", world_size=3, workers_per_node=1,
            peer_sets=((1,), (0, 2), (1,)),
        )
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-gossip-stochasticity"
        assert finding.severity == "error"
        assert finding.rank == 1

    def test_non_divisible_hierarchy_split(self):
        point = PlanPoint(
            algorithm="allreduce", world_size=6, workers_per_node=4,
            hierarchical=True,
        )
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-hierarchy-split"
        assert finding.severity == "error"

    def test_biased_compressor_without_error_feedback(self):
        point = PlanPoint(algorithm="qsgd", compressor="signsgd")
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-compressor-compat"
        assert finding.severity == "error"
        assert "signsgd" in finding.message

    def test_oversized_bucket_cap_warns(self):
        point = PlanPoint(algorithm="allreduce", bucket_bytes=1e6)
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-bucket-feasibility"
        assert finding.severity == "warning"  # degenerate, not invalid

    def test_non_positive_bucket_cap_is_an_error(self):
        point = PlanPoint(algorithm="allreduce", bucket_bytes=0.0)
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-bucket-feasibility"
        assert finding.severity == "error"

    def test_unknown_compressor(self):
        point = PlanPoint(algorithm="allreduce", compressor="no-such-codec")
        finding = the_one_finding(check_plan_static(point))
        assert finding.rule == "plan-compressor-compat"
        assert finding.severity == "error"

    def test_default_points_are_clean(self):
        for name in sorted(ALGORITHM_REGISTRY):
            point = PlanPoint(algorithm=name, **PLAN_OVERRIDES.get(name, {}))
            assert check_plan_static(point) == [], name


class TestWeightMatrix:
    def test_ring_matrix_is_doubly_stochastic(self):
        point = PlanPoint(
            algorithm="decentralized-8bit", world_size=4, workers_per_node=2
        )
        peer_sets = gossip_peer_sets(point, comm_model_of("decentralized-8bit"))
        matrix = gossip_weight_matrix(peer_sets, tuple(range(4)))
        for i in range(4):
            assert sum(matrix[i]) == pytest.approx(1.0)
            assert sum(row[i] for row in matrix) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Verdicts and pruning.
# ----------------------------------------------------------------------
class TestVerifyAndPrune:
    def test_static_error_skips_lowering(self):
        verdict = verify_point(
            PlanPoint(algorithm="qsgd", compressor="signsgd"), hb=True
        )
        assert not verdict.ok
        assert verdict.num_ops == 0
        assert "lowering skipped" in verdict.source
        assert "error feedback" in verdict.rejection

    def test_clean_point_lowers_and_counts_ops(self):
        verdict = verify_point(PlanPoint(algorithm="qsgd"), hb=True)
        assert verdict.ok
        assert verdict.num_ops > 0
        assert "symbolic lowering" in verdict.source

    def test_prune_points_partitions_with_reasons(self):
        points = [
            PlanPoint(algorithm="qsgd"),
            PlanPoint(algorithm="qsgd", compressor="signsgd"),
            PlanPoint(
                algorithm="allreduce", world_size=6, workers_per_node=4,
                hierarchical=True,
            ),
        ]
        accepted, rejected = prune_points(points, hb=True)
        assert accepted == [points[0]]
        assert len(rejected) == 2
        rules = {v.errors[0].rule for v in rejected}
        assert rules == {"plan-compressor-compat", "plan-hierarchy-split"}
        for verdict in rejected:
            assert verdict.rejection

    def test_default_sweep_is_clean_including_baselines(self):
        report = sweep_planspace(
            enumerate_points(include_baselines=True), hb=True
        )
        assert report.ok, report.render()
        assert report.rejected() == []
        # 14 algorithms x 8 O/F/H combinations at the default world shape
        assert len(report.verdicts) == 14 * 8
        assert all(v.num_ops > 0 for v in report.verdicts)

    def test_report_render_and_to_dict(self):
        report = sweep_planspace(
            [
                PlanPoint(algorithm="qsgd"),
                PlanPoint(algorithm="qsgd", compressor="signsgd"),
            ],
            hb=True,
        )
        assert not report.ok
        text = report.render()
        assert "2 plan(s) checked, 1 accepted, 1 rejected" in text
        assert "plan-compressor-compat" in text
        payload = report.to_dict()
        assert payload["num_plans"] == 2 and payload["num_rejected"] == 1
        failed = [v for v in payload["verdicts"] if not v["ok"]]
        assert len(failed) == 1
        assert failed[0]["findings"][0]["rule"] == "plan-compressor-compat"
        assert failed[0]["findings"][0]["plan"]  # location carries the plan label


# ----------------------------------------------------------------------
# CLI: python -m repro analyze --plans
# ----------------------------------------------------------------------
class TestPlansCli:
    def test_single_algorithm_sweep(self, capsys):
        assert main(["analyze", "--plans", "decentralized-8bit"]) == 0
        out = capsys.readouterr().out
        assert "plan(s) checked" in out and "0 rejected" in out

    def test_json_output_parses(self, capsys):
        assert main(["analyze", "--plans", "qsgd", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["num_plans"] == 8  # one algorithm x O/F/H grid

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["analyze", "--plans", "no-such-algo"]) == 2
        assert "no communication model" in capsys.readouterr().err
