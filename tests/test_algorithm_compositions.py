"""Composed relaxations: async+quantized, async+decentralized, qsparse-local."""

import numpy as np
import pytest

from repro.algorithms import (
    AllreduceSGD,
    AsyncDecentralizedSGD,
    AsyncQSGD,
    QSparseLocalSGD,
    make_algorithm,
)
from repro.cluster import ClusterSpec
from repro.training import DistributedTrainer, get_task

WORLD = ClusterSpec(num_nodes=2, workers_per_node=2)


def train(algorithm, epochs=3, seed=0, task_name="VGG16"):
    task = get_task(task_name)
    trainer = DistributedTrainer(
        WORLD, task.model_factory, task.make_optimizer, algorithm, seed=seed
    )
    loaders = task.make_loaders(WORLD.world_size, seed=seed)
    return trainer, trainer.train(loaders, task.loss_fn, epochs=epochs)


class TestAsyncQSGD:
    def test_converges(self):
        _, record = train(AsyncQSGD())
        assert record.epoch_losses[-1] < record.epoch_losses[0]
        assert not record.diverged

    def test_traffic_cheaper_than_full_precision_async(self):
        trainer_q, _ = train(AsyncQSGD(), epochs=2)
        trainer_fp, _ = train(make_algorithm("async"), epochs=2)
        assert (
            trainer_q.transport.stats.total_bytes
            < 0.5 * trainer_fp.transport.stats.total_bytes
        )

    def test_registry_name(self):
        assert make_algorithm("async-qsgd").name == "async-qsgd"


class TestAsyncDecentralized:
    def test_converges(self):
        _, record = train(AsyncDecentralizedSGD())
        assert record.epoch_losses[-1] < record.epoch_losses[0]

    def test_replicas_differ(self):
        trainer, _ = train(AsyncDecentralizedSGD())
        states = [w.model.state_dict() for w in trainer.engine.workers]
        name = next(iter(states[0]))
        assert any(
            not np.array_equal(states[0][name], s[name]) for s in states[1:]
        )

    def test_staleness_from_publish_interval(self):
        _, fresh = train(AsyncDecentralizedSGD(publish_interval=1), epochs=3)
        _, stale = train(AsyncDecentralizedSGD(publish_interval=4), epochs=3)
        # Staler snapshots slow consensus; final loss should not improve.
        assert stale.epoch_losses[-1] >= fresh.epoch_losses[-1] - 0.05

    def test_publish_interval_validation(self):
        with pytest.raises(ValueError):
            AsyncDecentralizedSGD(publish_interval=0)


class TestQSparseLocalSGD:
    def test_converges(self):
        _, record = train(QSparseLocalSGD(frequency=2, ratio=0.1))
        assert record.epoch_losses[-1] < record.epoch_losses[0]
        assert not record.diverged

    def test_tracks_allreduce_reasonably(self):
        _, exact = train(AllreduceSGD(), epochs=3)
        _, combo = train(QSparseLocalSGD(frequency=2, ratio=0.1), epochs=3)
        assert combo.epoch_losses[-1] < exact.epoch_losses[0]

    def test_sync_points_realign_anchor(self):
        trainer, _ = train(QSparseLocalSGD(frequency=2, ratio=0.2), epochs=1)
        # After training, every worker's anchor matches its live weights at
        # the last sync boundary; anchors agree across workers.
        anchors = [w.state["anchor"] for w in trainer.engine.workers]
        for other in anchors[1:]:
            for a, b in zip(anchors[0], other):
                np.testing.assert_allclose(a, b, atol=1e-9)

    def test_much_less_traffic_than_allreduce(self):
        trainer_combo, _ = train(QSparseLocalSGD(frequency=2, ratio=0.05), epochs=2)
        trainer_exact, _ = train(AllreduceSGD(), epochs=2)
        assert (
            trainer_combo.transport.stats.total_bytes
            < 0.2 * trainer_exact.transport.stats.total_bytes
        )

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            QSparseLocalSGD(frequency=0)

    def test_registry(self):
        assert make_algorithm("qsparse-local-sgd").name == "qsparse-local-sgd"


class TestSupportMatrixNowConcrete:
    def test_async_rows_reference_real_algorithms(self):
        from repro.algorithms import ALGORITHM_REGISTRY, SUPPORT_MATRIX

        for profile in SUPPORT_MATRIX:
            if profile.bagua and profile.bagua_algorithm:
                primary = profile.bagua_algorithm.split(" / ")[0]
                assert primary in ALGORITHM_REGISTRY, primary
