"""Bit-identity contract of the world-batched fast path (PR 5).

The batched kernels in :mod:`repro.comm.batched` must be observationally
indistinguishable from the per-rank loop reference: same result bits, same
virtual clocks, same traffic statistics, same round counters, same
compressor RNG streams and error-feedback residuals, and — through the
analysis stack — identical lowered schedules and happens-before reports.
These tests drive both implementations side by side over every collective
x compressor combination.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, Transport
from repro.cluster.netmodel import TCP_25G
from repro.comm import CommGroup, chunk_bounds, ring_allreduce, scatter_reduce
from repro.comm.fastpath import fast_path_enabled, set_fast_path, use_fast_path
from repro.compression import (
    ErrorFeedback,
    OneBitCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)
from repro.core.primitives import (
    RandomPeers,
    RingPeers,
    c_fp_s,
    c_lp_s,
    d_fp_s,
    d_lp_s,
)

# Codec factories: fresh instances per run so RNG streams start identical.
CODEC_FACTORIES = {
    "qsgd8": lambda: QSGDCompressor(bits=8, rng=np.random.default_rng(3)),
    "qsgd4": lambda: QSGDCompressor(bits=4, rng=np.random.default_rng(11)),
    "onebit": OneBitCompressor,
    "terngrad": lambda: TernGradCompressor(rng=np.random.default_rng(5)),
    "topk": lambda: TopKCompressor(ratio=0.25),
    "signsgd": SignSGDCompressor,
}


def _group(world: int, backend: str = "batched") -> CommGroup:
    """Multi-node when divisible into nodes of 4 (mixes NVLink + TCP fabrics)."""
    if world > 4 and world % 4 == 0:
        spec = ClusterSpec(
            num_nodes=world // 4, workers_per_node=4, inter_node=TCP_25G
        )
    else:
        spec = ClusterSpec(num_nodes=1, workers_per_node=world, inter_node=TCP_25G)
    return CommGroup(Transport(spec, backend=backend), list(range(world)))


def _transport_state(group: CommGroup) -> tuple:
    transport = group.transport
    stats = transport.stats
    return (
        [clock.now for clock in transport.clocks],
        stats.messages,
        stats.rounds,
        stats.total_bytes,
        stats.inter_node_bytes,
        stats.intra_node_bytes,
        dict(stats.per_rank_sent_bytes),
        transport._round_counter,
    )


def _assert_identical(loop_out, fast_out, loop_group, fast_group):
    assert len(loop_out) == len(fast_out)
    for a, b in zip(loop_out, fast_out):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b), "fast path result bits differ from loop"
        # array_equal treats -0.0 == 0.0; the contract is bit-for-bit.
        assert np.array_equal(np.signbit(a), np.signbit(b))
    assert _transport_state(loop_group) == _transport_state(fast_group)


def _compare(world: int, length: int, seed: int, run) -> None:
    rng = np.random.default_rng(seed)
    base = [rng.standard_normal(length) for _ in range(world)]
    loop_group, fast_group = _group(world), _group(world)
    loop_out = run(loop_group, [a.copy() for a in base], False)
    fast_out = run(fast_group, [a.copy() for a in base], True)
    _assert_identical(loop_out, fast_out, loop_group, fast_group)


class TestCollectiveIdentity:
    """scatter_reduce / ring_allreduce: fast == loop for arbitrary inputs."""

    @settings(max_examples=40, deadline=None)
    @given(
        world=st.integers(2, 9),
        length=st.integers(1, 200),
        seed=st.integers(0, 2**31),
    )
    def test_scatter_reduce(self, world, length, seed):
        _compare(
            world, length, seed,
            lambda g, arrs, fp: scatter_reduce(arrs, g, fast_path=fp),
        )

    @settings(max_examples=40, deadline=None)
    @given(
        world=st.integers(2, 9),
        length=st.integers(1, 200),
        seed=st.integers(0, 2**31),
    )
    def test_ring_allreduce(self, world, length, seed):
        _compare(
            world, length, seed,
            lambda g, arrs, fp: ring_allreduce(arrs, g, fast_path=fp),
        )

    def test_multi_node_worlds(self):
        # Worlds of 8 and 16 span two fabrics (NVLink intra, TCP inter);
        # one rank sends on both in a single round, the regime where chain
        # bookkeeping is least trivial.
        for world in (8, 16):
            _compare(
                world, 257, world,
                lambda g, arrs, fp: scatter_reduce(arrs, g, fast_path=fp),
            )

    def test_c_fp_s_routes_through_default(self):
        # c_fp_s has no fast_path parameter: it follows the global switch.
        rng = np.random.default_rng(0)
        base = [rng.standard_normal(100) for _ in range(4)]
        loop_group, fast_group = _group(4), _group(4)
        with use_fast_path(False):
            loop_out = c_fp_s([a.copy() for a in base], loop_group)
        with use_fast_path(True):
            fast_out = c_fp_s([a.copy() for a in base], fast_group)
        _assert_identical(loop_out, fast_out, loop_group, fast_group)


class TestCompressorMatrix:
    """Every collective x compressor combination, both directions."""

    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    @settings(max_examples=15, deadline=None)
    @given(
        world=st.integers(2, 8),
        length=st.integers(2, 120),
        seed=st.integers(0, 2**31),
    )
    def test_c_lp_s(self, codec_name, world, length, seed):
        make = CODEC_FACTORIES[codec_name]
        _compare(
            world, length, seed,
            lambda g, arrs, fp: c_lp_s(arrs, g, make(), fast_path=fp),
        )

    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    @settings(max_examples=15, deadline=None)
    @given(
        world=st.integers(2, 8),
        length=st.integers(2, 120),
        seed=st.integers(0, 2**31),
    )
    def test_d_lp_s_ring(self, codec_name, world, length, seed):
        make = CODEC_FACTORIES[codec_name]
        _compare(
            world, length, seed,
            lambda g, arrs, fp: d_lp_s(arrs, g, make(), RingPeers(), fast_path=fp),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        world=st.integers(2, 8),
        length=st.integers(1, 120),
        step=st.integers(0, 5),
        seed=st.integers(0, 2**31),
    )
    def test_d_fp_s_random_peers(self, world, length, step, seed):
        _compare(
            world, length, seed,
            lambda g, arrs, fp: d_fp_s(
                arrs, g, RandomPeers(seed=7), step=step, fast_path=fp
            ),
        )

    @pytest.mark.parametrize("codec_name", sorted(CODEC_FACTORIES))
    def test_c_lp_s_error_feedback_two_steps(self, codec_name):
        # Error feedback carries residual state across steps; both paths
        # must leave the stores bit-identical after a multi-step run.
        world, length = 4, 97
        make = CODEC_FACTORIES[codec_name]
        rng = np.random.default_rng(13)
        steps = [
            [rng.standard_normal(length) for _ in range(world)] for _ in range(2)
        ]
        outs, efs = {}, {}
        for fast in (False, True):
            group = _group(world)
            codec = make()
            workers = [ErrorFeedback(make()) for _ in range(world)]
            servers = [ErrorFeedback(make()) for _ in range(world)]
            outs[fast] = [
                c_lp_s(
                    [a.copy() for a in arrays], group, codec,
                    worker_errors=workers, server_errors=servers,
                    fast_path=fast,
                )
                for arrays in steps
            ]
            efs[fast] = (workers, servers)
        for step_loop, step_fast in zip(outs[False], outs[True]):
            for a, b in zip(step_loop, step_fast):
                assert np.array_equal(a, b)
        for ef_loop, ef_fast in zip(efs[False][0] + efs[False][1],
                                    efs[True][0] + efs[True][1]):
            assert set(ef_loop._residuals) == set(ef_fast._residuals)
            for key, value in ef_loop._residuals.items():
                assert np.array_equal(value, ef_fast._residuals[key])


class TestHierarchicalIdentity:
    @pytest.mark.parametrize("codec_name", ["qsgd8", "onebit"])
    def test_hierarchical_c_lp_s(self, codec_name):
        make = CODEC_FACTORIES[codec_name]
        _compare(
            8, 129, 5,
            lambda g, arrs, fp: c_lp_s(
                arrs, g, make(), hierarchical=True, fast_path=fp
            ),
        )


class TestScheduleAndAnalysisUnchanged:
    """The fast path must not perturb lowered schedules or HB reports."""

    def test_analyze_hb_identical_across_paths(self):
        from repro.analysis import analyze_algorithm

        reports = {}
        for fast in (False, True):
            with use_fast_path(fast):
                reports[fast] = analyze_algorithm(
                    "allreduce", steps=2, hb=True
                ).to_dict()
        assert reports[False] == reports[True]
        assert reports[True]["ok"]

    def test_traced_rounds_identical(self):
        # With a tracer installed the fast path routes stub messages
        # through exchange(), so recorded rounds must match the loop's
        # message for message.
        class _Recorder:
            def __init__(self):
                self.rounds = []

            def on_exchange(self, messages):
                self.rounds.append(
                    [(m.src, m.dst, m.nbytes, m.match_id) for m in messages]
                )

        rng = np.random.default_rng(2)
        base = [rng.standard_normal(50) for _ in range(4)]
        traces = {}
        for fast in (False, True):
            group = _group(4)
            recorder = _Recorder()
            group.transport.tracer = recorder
            scatter_reduce([a.copy() for a in base], group, fast_path=fast)
            traces[fast] = recorder.rounds
        assert traces[False] == traces[True]


class TestFastPathSwitch:
    def test_default_enabled(self):
        assert fast_path_enabled()

    def test_set_and_context_manager_restore(self):
        assert fast_path_enabled()
        set_fast_path(False)
        try:
            assert not fast_path_enabled()
            with use_fast_path(True):
                assert fast_path_enabled()
            assert not fast_path_enabled()
        finally:
            set_fast_path(True)

    def test_engine_config_controls_path(self):
        from repro.core.optimizer_framework import BaguaConfig

        # Default defers to the transport backend's kernel preference.
        assert BaguaConfig().fast_path is None
        assert BaguaConfig(fast_path=True).fast_path is True
        assert BaguaConfig(fast_path=False).fast_path is False

    def test_backend_preference_resolves_default(self, monkeypatch):
        from repro.comm.fastpath import resolve_fast_path

        monkeypatch.delenv("REPRO_FAST_PATH", raising=False)
        set_fast_path(None)  # clear any explicit global left by other tests
        loop_group = _group(2, backend="local")
        fast_group = _group(2, backend="batched")
        assert resolve_fast_path(None, loop_group.transport) is False
        assert resolve_fast_path(None, fast_group.transport) is True
        # An explicit global (context manager) overrides the preference...
        with use_fast_path(True):
            assert resolve_fast_path(None, loop_group.transport) is True
        # ...and an explicit per-call argument overrides everything.
        assert resolve_fast_path(True, loop_group.transport) is True
        assert resolve_fast_path(False, fast_group.transport) is False


class TestDeprecatedLoopInternals:
    @pytest.mark.parametrize("name", ["alltoall", "allgather_payloads"])
    def test_package_level_access_warns(self, name):
        import repro.comm as comm
        from repro.comm import collectives

        with pytest.warns(DeprecationWarning, match=name):
            attr = getattr(comm, name)
        assert attr is getattr(collectives, name)

    def test_unknown_attribute_raises(self):
        import repro.comm as comm

        with pytest.raises(AttributeError):
            comm.does_not_exist


class TestChunkBoundsCache:
    def test_memoized_and_shared(self):
        chunk_bounds.cache_clear()
        first = chunk_bounds(1000, 7)
        assert chunk_bounds(1000, 7) is first  # lru_cache hit
        assert chunk_bounds.cache_info().hits >= 1

    def test_matches_array_split(self):
        for length, parts in [(0, 3), (10, 3), (7, 7), (5, 8), (1000, 13)]:
            splits = np.array_split(np.arange(length), parts)
            expected = []
            offset = 0
            for s in splits:
                expected.append((offset, offset + len(s)))
                offset += len(s)
            assert list(chunk_bounds(length, parts)) == expected


class TestBucketFlatPool:
    def test_external_buffer_is_zero_copy(self):
        from repro.core import TensorBucket
        from repro.tensor import Tensor

        params = [
            Tensor(np.arange(6, dtype=np.float64).reshape(2, 3)),
            Tensor(np.ones(4, dtype=np.float64)),
        ]
        pool = np.empty(10, dtype=np.float64)
        bucket = TensorBucket(params, flatten=True, buffer=pool)
        assert bucket.buffer is pool
        for p in params:
            assert np.shares_memory(p.data, pool)
        # Mutations through the pool are visible in the parameters.
        pool[:] = 42.0
        assert float(params[0].data[0, 0]) == 42.0

    def test_engine_allocates_one_pool_per_worker(self):
        from repro.perf.harness import _bench_epoch  # noqa: F401 — import only

        from repro.algorithms import QSGD
        from repro.cluster import ClusterSpec
        from repro.core.optimizer_framework import BaguaConfig
        from repro.data.loader import make_sharded_loaders
        from repro.training import DistributedTrainer, get_task

        task = get_task("VGG16")
        spec = ClusterSpec(num_nodes=1, workers_per_node=2, inter_node=TCP_25G)
        trainer = DistributedTrainer(
            spec, task.model_factory, task.make_optimizer, QSGD(bits=8),
            config=BaguaConfig(fast_path=True), seed=0,
        )
        dataset = task.dataset_factory(0)
        loaders = make_sharded_loaders(dataset, 2, 16, seed=0)
        trainer.train(loaders, task.loss_fn, epochs=1, label="pool")
        for worker in trainer.engine.workers:
            pool = worker.state["flat_pool"]
            assert pool is not None
            assert pool.dtype == np.float64
            for bucket in worker.buckets:
                assert np.shares_memory(bucket.buffer, pool)


class TestEpochLossParity:
    def test_losses_and_traffic_bitwise_equal(self):
        from repro.algorithms import QSGD
        from repro.cluster import ClusterSpec
        from repro.core.optimizer_framework import BaguaConfig
        from repro.data.loader import make_sharded_loaders
        from repro.training import DistributedTrainer, get_task

        task = get_task("VGG16")
        dataset = task.dataset_factory(0)
        records = {}
        for fast in (False, True):
            spec = ClusterSpec(num_nodes=1, workers_per_node=2, inter_node=TCP_25G)
            trainer = DistributedTrainer(
                spec, task.model_factory, task.make_optimizer, QSGD(bits=8),
                config=BaguaConfig(fast_path=fast), seed=0,
            )
            loaders = make_sharded_loaders(dataset, 2, 16, seed=0)
            record = trainer.train(loaders, task.loss_fn, epochs=1, label="parity")
            records[fast] = (
                record.epoch_losses,
                record.epoch_sim_times,
                record.epoch_comm_bytes,
                trainer.transport.stats.messages,
                trainer.transport.stats.total_bytes,
            )
        assert records[False] == records[True]
