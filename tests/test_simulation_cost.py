"""Cost model: dry-run/real consistency, caching, monotonicity."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, Transport
from repro.comm import CommGroup, ring_allreduce, scatter_reduce
from repro.compression import OneBitCompressor, QSGDCompressor
from repro.core.primitives import RingPeers, d_fp_s
from repro.simulation import CommCostModel
from repro.simulation.patterns import (
    dry_decentralized,
    dry_ring_allreduce,
    dry_scatter_reduce,
)


@pytest.fixture
def spec() -> ClusterSpec:
    return ClusterSpec(num_nodes=2, workers_per_node=4)


class TestDryRealConsistency:
    """Dry-run schedules must charge the same simulated time as real runs
    moving float64 payloads of the same size."""

    ELEMENTS = 4096

    def _real_time(self, spec, collective):
        transport = Transport(spec)
        group = CommGroup(transport, list(range(spec.world_size)))
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(self.ELEMENTS) for _ in range(group.size)]
        collective(arrays, group)
        return transport.max_time()

    def _dry_time(self, spec, pattern):
        transport = Transport(spec)
        group = CommGroup(transport, list(range(spec.world_size)))
        pattern(group)
        return transport.max_time()

    def test_ring_allreduce(self, spec):
        real = self._real_time(spec, ring_allreduce)
        # Payloads in the real run are float64 tuples (+8B tag per message).
        dry = self._dry_time(
            spec,
            lambda g: dry_ring_allreduce(
                g, self.ELEMENTS, wire=lambda n: n * 8.0 + 8.0
            ),
        )
        assert dry == pytest.approx(real, rel=0.02)

    def test_scatter_reduce(self, spec):
        real = self._real_time(spec, scatter_reduce)
        dry = self._dry_time(
            spec,
            lambda g: dry_scatter_reduce(
                g,
                self.ELEMENTS,
                wire_phase1=lambda n: n * 8.0 + 8.0,
                wire_phase2=lambda n: n * 8.0 + 8.0,
            ),
        )
        assert dry == pytest.approx(real, rel=0.05)

    def test_decentralized(self, spec):
        real = self._real_time(
            spec, lambda a, g: d_fp_s(a, g, peers=RingPeers(), step=0)
        )
        dry = self._dry_time(
            spec,
            lambda g: dry_decentralized(
                g, self.ELEMENTS, RingPeers(), wire=lambda n: n * 8.0 + 8.0
            ),
        )
        assert dry == pytest.approx(real, rel=0.05)


class TestCostModel:
    def test_caching_returns_same_object_fast(self, spec):
        cost = CommCostModel(spec)
        first = cost.centralized(1 << 20)
        second = cost.centralized(1 << 20)
        assert first == second
        assert len(cost._cache) == 1

    def test_monotone_in_size(self, spec):
        cost = CommCostModel(spec)
        assert cost.centralized(1 << 22) > cost.centralized(1 << 18)
        assert cost.ring_allreduce(1 << 22) > cost.ring_allreduce(1 << 18)

    def test_compression_cheaper(self, spec):
        cost = CommCostModel(spec)
        n = 1 << 22
        fp = cost.centralized(n)
        q8 = cost.centralized(n, compressor=QSGDCompressor(bits=8))
        onebit = cost.centralized(n, compressor=OneBitCompressor())
        assert onebit < q8 < fp

    def test_hierarchical_cheaper_than_flat_at_scale(self):
        spec = ClusterSpec(num_nodes=8, workers_per_node=8)
        cost = CommCostModel(spec)
        n = 1 << 22
        assert cost.centralized(n, hierarchical=True) < cost.centralized(n)

    def test_decentralized_cheapest_per_round(self, spec):
        cost = CommCostModel(spec)
        n = 1 << 22
        assert cost.decentralized(n) < cost.centralized(n)

    def test_more_bandwidth_is_faster(self):
        from repro.cluster import TCP_10G, TCP_100G

        slow = CommCostModel(ClusterSpec(num_nodes=2, workers_per_node=4, inter_node=TCP_10G))
        fast = CommCostModel(ClusterSpec(num_nodes=2, workers_per_node=4, inter_node=TCP_100G))
        n = 1 << 22
        assert fast.centralized(n) < slow.centralized(n)

    def test_ps_local_aggregation_helps(self, spec):
        cost = CommCostModel(spec)
        n = 1 << 22
        assert cost.ps_push_pull(n, local_aggregation=True) < cost.ps_push_pull(
            n, local_aggregation=False
        )

    def test_kernel_costs_positive_and_scaling(self, spec):
        cost = CommCostModel(spec)
        assert cost.compress_time(1 << 20) > cost.compress_time(1 << 10) > 0
        assert cost.update_time(1 << 20, num_tensors=100) > cost.update_time(
            1 << 20, num_tensors=1
        )
        assert cost.server_aggregation_time(1 << 20, num_pushers=16) > 0
